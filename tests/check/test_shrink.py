"""Shrinker tests: minimality against a committed golden bound, and
byte-identical artifact replay."""

from __future__ import annotations

import json
import os

import pytest

from repro.check.explore import TrialSpec, capture_run, explore, schedule_of
from repro.check.invariants import INVARIANTS, PROTOCOLS
from repro.check.shrink import (
    SchedulePrefixAdversary,
    load_artifact,
    replay_artifact,
    run_schedule,
    shrink_schedule,
    stream_digest,
)

#: The seeded violation below (naive sifter, coin_aware batch, n=8,
#: seed=0) must shrink to no more than this many schedule entries.  The
#: shrinker currently reaches 98 from an original of ~225; the bound has
#: a little headroom so unrelated schedule drift does not flake the
#: test, while still failing loudly if shrinking regresses.
GOLDEN_SHRUNK_LEN = 110


@pytest.fixture(scope="module")
def seeded_violation(tmp_path_factory):
    """One deterministic naive-sifter violation, shrunk into a tmp dir."""
    out_dir = str(tmp_path_factory.mktemp("artifacts"))
    report = explore(
        "naive_sifter", n=8, budget=6, seed=0,
        adversaries=("coin_aware",), modes=("random",),
        shrink=True, out_dir=out_dir,
    )
    assert not report.ok, "seeded violation disappeared; update the test"
    return report.violations[0]


class TestSchedulePrefixAdversary:
    def test_replays_full_schedule_exactly(self):
        spec = PROTOCOLS["poison_pill"]
        trial = TrialSpec(index=0, mode="random", adversary="coin_aware", seed=3)
        _, events = capture_run(spec, trial, 8, None)
        schedule = schedule_of(events)
        ctx = run_schedule(spec, schedule, 8, None, trial.seed)
        assert schedule_of(ctx.events) == schedule

    def test_skips_unresolvable_entries(self):
        spec = PROTOCOLS["poison_pill"]
        trial = TrialSpec(index=0, mode="random", adversary="eager", seed=5)
        _, events = capture_run(spec, trial, 8, None)
        schedule = schedule_of(events)
        # Drop a delivery from the middle: the tolerant replayer must
        # still complete the run (deterministically) instead of failing.
        deliveries = [
            i for i, entry in enumerate(schedule)
            if entry["e"] == "msg.deliver"
        ]
        del schedule[deliveries[len(deliveries) // 2]]
        ctx = run_schedule(spec, schedule, 8, None, trial.seed)
        assert ctx.result.terminated

    def test_reuse_contract(self):
        spec = PROTOCOLS["poison_pill"]
        trial = TrialSpec(index=0, mode="random", adversary="eager", seed=5)
        _, events = capture_run(spec, trial, 8, None)
        adversary = SchedulePrefixAdversary(schedule_of(events))
        from repro.check.invariants import run_protocol
        from repro.obs.events import ListSink

        digests = []
        for _ in range(2):
            sink = ListSink()
            run_protocol(spec, 8, None, adversary, trial.seed, sink=sink)
            digests.append(schedule_of(sink.events))
        assert digests[0] == digests[1]


class TestShrinkSchedule:
    def test_non_violating_schedule_returned_unshrunk(self):
        spec = PROTOCOLS["poison_pill"]
        trial = TrialSpec(index=0, mode="random", adversary="eager", seed=1)
        _, events = capture_run(spec, trial, 8, None)
        schedule = schedule_of(events)
        result = shrink_schedule(
            spec, schedule, lambda ctx: False, 8, None, trial.seed
        )
        assert result.shrunk_len == result.original_len == len(schedule)

    def test_eval_budget_is_respected(self):
        spec = PROTOCOLS["naive_sifter"]
        trial = TrialSpec(index=0, mode="random", adversary="coin_aware", seed=0)
        _, events = capture_run(spec, trial, 8, None)
        schedule = schedule_of(events)
        result = shrink_schedule(
            spec, schedule, INVARIANTS["sifting_effective"].witness,
            8, None, trial.seed, max_evals=10,
        )
        assert result.evaluations <= 10


class TestSeededViolation:
    def test_shrinks_below_golden_length(self, seeded_violation):
        record = seeded_violation
        assert record.shrunk_schedule_len is not None
        assert record.shrunk_schedule_len <= GOLDEN_SHRUNK_LEN, (
            f"shrinker regressed: {record.original_schedule_len} -> "
            f"{record.shrunk_schedule_len} (golden {GOLDEN_SHRUNK_LEN})"
        )
        assert record.shrunk_schedule_len < record.original_schedule_len

    def test_artifacts_exist(self, seeded_violation):
        record = seeded_violation
        for path in (record.artifact_path, record.trace_path, record.script_path):
            assert path is not None and os.path.exists(path)

    def test_artifact_replays_byte_identically(self, seeded_violation):
        replay = replay_artifact(seeded_violation.artifact_path)
        assert replay.digest_matches, replay.describe()
        assert replay.ok, replay.describe()
        assert replay.replayed_violation == replay.expected_violation

    def test_replay_detects_tampered_schedule(self, seeded_violation, tmp_path):
        obj = load_artifact(seeded_violation.artifact_path)
        obj["schedule"] = obj["schedule"][: len(obj["schedule"]) // 2]
        tampered = tmp_path / "tampered.json"
        tampered.write_text(json.dumps(obj))
        replay = replay_artifact(str(tampered))
        assert not replay.digest_matches

    def test_artifact_digest_matches_fresh_execution(self, seeded_violation):
        obj = load_artifact(seeded_violation.artifact_path)
        spec = PROTOCOLS[obj["protocol"]]
        ctx = run_schedule(
            spec, obj["schedule"], obj["n"], obj["k"], obj["seed"],
            obj["pattern"],
        )
        assert stream_digest(ctx) == obj["stream_sha256"]

    def test_trace_replays_via_obs(self, seeded_violation):
        from repro.obs.replay import replay_trace

        report = replay_trace(seeded_violation.trace_path)
        assert report.ok, "violation trace must replay byte-identically"

    def test_repro_script_names_the_claim(self, seeded_violation):
        with open(seeded_violation.script_path, "r", encoding="utf-8") as fp:
            text = fp.read()
        assert "sifting_effective" in text
        assert "repro check --replay" in text


class TestArtifactValidation:
    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"artifact_version": 999}))
        with pytest.raises(ValueError, match="unsupported artifact version"):
            load_artifact(str(path))
