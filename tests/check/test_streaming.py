"""Tests for streaming invariant checking (fail during the run).

Synthetic streams pin each monitor's trigger exactly; the integration
tests then attach a :class:`StreamingChecker` to live simulations and
verify the acceptance criterion: the naive sifter under the coin-aware
adversary is caught *before* the run completes, with the offending
event pinpointed, while correct protocols pass clean.
"""

from __future__ import annotations

import pytest

from repro.check.streaming import (
    STREAMING_INVARIANTS,
    StreamingChecker,
    StreamingViolation,
    streaming_invariants_for,
)
from repro.core.protocol import Outcome
from repro.harness.runners import run_leader_election, run_sifting_phase
from repro.obs.events import Event, EventType


def _decide(time, pid, result):
    """A synthetic proc.decide event carrying ``result``."""
    return Event(time, EventType.PROC_DECIDE, pid, {"result": result})


class TestRegistry:
    """Invariant metadata and task filtering."""

    def test_every_invariant_names_its_batch_twin(self):
        from repro.check.invariants import INVARIANTS

        for inv in STREAMING_INVARIANTS.values():
            assert inv.batch_name in INVARIANTS

    def test_filtering_by_task_and_name(self):
        elect = [inv.name for inv in streaming_invariants_for("elect")]
        assert "unique_winner" in elect
        assert "no_false_death" not in elect
        only = streaming_invariants_for("sift", ["no_false_death"])
        assert [inv.name for inv in only] == ["no_false_death"]

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown streaming invariants"):
            streaming_invariants_for("elect", ["nope"])


class TestMonitorsSynthetic:
    """Each monitor's exact trigger on hand-built streams."""

    def test_second_winner_raises_with_event_id(self):
        checker = StreamingChecker("elect")
        checker.emit(_decide(10, 3, "win"))
        checker.emit(_decide(11, 4, "lose"))
        with pytest.raises(StreamingViolation) as excinfo:
            checker.emit(_decide(12, 5, "win"))
        violation = excinfo.value
        assert violation.invariant == "unique_winner"
        assert violation.event_index == 2
        assert "second winner p5 after p3" in violation.violation_message
        assert "event #2" in str(violation) and "t=12" in str(violation)

    def test_live_outcome_enums_are_normalized(self):
        checker = StreamingChecker("elect")
        checker.emit(_decide(1, 0, Outcome.WIN))
        with pytest.raises(StreamingViolation):
            checker.emit(_decide(2, 1, Outcome.WIN))

    def test_invalid_outcome_flagged_per_decision(self):
        checker = StreamingChecker("elect")
        with pytest.raises(StreamingViolation) as excinfo:
            checker.emit(_decide(1, 0, "survive"))
        assert excinfo.value.invariant == "valid_election_outcomes"

    def test_false_death_needs_a_high_sifter_coin(self):
        checker = StreamingChecker("sift", k=4)
        coin = Event(1, EventType.COIN_FLIP, 2,
                     {"label": "sift.coin", "value": 1})
        checker.emit(coin)
        with pytest.raises(StreamingViolation) as excinfo:
            checker.emit(_decide(2, 2, "die"))
        assert excinfo.value.invariant == "no_false_death"
        # A low coin dying is fine.
        clean = StreamingChecker("sift", k=4)
        clean.emit(Event(1, EventType.COIN_FLIP, 2,
                         {"label": "sift.coin", "value": 0}))
        clean.emit(_decide(2, 2, "die"))

    def test_duplicate_name_flagged(self):
        checker = StreamingChecker("rename")
        checker.emit(_decide(1, 0, 7))
        with pytest.raises(StreamingViolation) as excinfo:
            checker.emit(_decide(2, 3, 7))
        assert excinfo.value.invariant == "names_unique"

    def test_sifting_witness_fires_at_threshold(self):
        # k=10 -> threshold ceil(0.8 * 10) = 8 survivors.
        checker = StreamingChecker("sift", k=10,
                                   invariants=["sifting_witness"])
        for pid in range(7):
            checker.emit(_decide(pid, pid, "survive"))
        with pytest.raises(StreamingViolation) as excinfo:
            checker.emit(_decide(8, 8, "survive"))
        assert "8/10" in excinfo.value.violation_message

    def test_sifting_witness_disarmed_by_crash_and_small_k(self):
        crashed = StreamingChecker("sift", k=10,
                                   invariants=["sifting_witness"])
        crashed.emit(Event(0, EventType.SCHED_CRASH, 9, {}))
        for pid in range(10):
            crashed.emit(_decide(pid, pid, "survive"))  # no raise
        small = StreamingChecker("sift", k=4,
                                 invariants=["sifting_witness"])
        for pid in range(4):
            small.emit(_decide(pid, pid, "survive"))  # below SIFTING_MIN_K

    def test_fail_fast_off_records_and_drops_monitor(self):
        checker = StreamingChecker("elect", fail_fast=False)
        violations = checker.check_events([
            _decide(1, 0, "win"),
            _decide(2, 1, "win"),
            _decide(3, 2, "win"),  # monitor already dropped: no new entry
        ])
        assert len(violations) == 1
        assert checker.events_checked == 3


class TestLiveRuns:
    """StreamingChecker attached to real simulations."""

    def test_correct_election_passes_clean(self):
        checker = StreamingChecker("elect")
        run = run_leader_election(
            n=16, adversary="random", seed=11, sink=checker,
        )
        assert run.winner is not None
        assert checker.violations == []
        assert checker.events_checked > 0

    def test_naive_sifter_caught_before_run_completes(self):
        # The acceptance criterion: the coin-aware adversary makes the
        # naive sifter keep everyone alive, and the witness monitor must
        # fire mid-run — with participants still undecided — rather than
        # after the fact.
        checker = StreamingChecker("sift", k=16)
        with pytest.raises(StreamingViolation) as excinfo:
            run_sifting_phase(
                kind="naive", n=16, adversary="coin_aware", seed=3,
                sink=checker, check=False,
            )
        violation = excinfo.value
        assert violation.invariant == "sifting_witness"
        assert violation.event_index < checker.events_checked + 1

    def test_naive_sifter_violation_recorded_without_fail_fast(self):
        checker = StreamingChecker("sift", k=16, fail_fast=False)
        run = run_sifting_phase(
            kind="naive", n=16, adversary="coin_aware", seed=3,
            sink=checker, check=False,
        )
        names = [violation.invariant for violation in checker.violations]
        assert "sifting_witness" in names
        # The violation fired strictly before the stream ended.
        witness = checker.violations[0]
        assert witness.event_index < checker.events_checked - 1
        assert run.survivors > 0

    def test_paper_sifter_does_not_trip_the_witness(self):
        checker = StreamingChecker("sift", k=16, fail_fast=False)
        run_sifting_phase(
            kind="heterogeneous", n=16, adversary="coin_aware", seed=3,
            sink=checker, check=False,
        )
        assert checker.violations == []
