"""Tests for the repro.check schedule-exploration engine."""
