"""Tests for ``audit_trace``: streaming a JSONL trace through the checker.

The soak harness feeds episode traces through this path while the
writer may have died mid-line, so the malformed-stream cases must fail
with a clean one-line :class:`StreamError`, never a traceback from the
JSON machinery.
"""

from __future__ import annotations

import json

import pytest

from repro.check.streaming import StreamError, StreamingViolation, audit_trace
from repro.obs.events import Event, EventType
from repro.obs.jsonl import event_line


def write_trace(path, events, meta=None, tail=""):
    """Write a JSONL trace: optional meta line, events, raw ``tail`` text."""
    lines = []
    if meta is not None:
        lines.append(json.dumps({"meta": meta}))
    lines.extend(event_line(event) for event in events)
    with open(path, "w", encoding="utf-8") as fp:
        fp.write("\n".join(lines))
        if lines:
            fp.write("\n")
        fp.write(tail)
    return str(path)


def decide(time, pid, result):
    """One proc.decide event."""
    return Event(time, EventType.PROC_DECIDE, pid, {"result": result})


class TestCleanStreams:
    def test_clean_election_trace_passes(self, tmp_path):
        path = write_trace(tmp_path / "ok.jsonl", [
            decide(1, 0, "win"), decide(2, 1, "lose"),
        ], meta={"task": "elect"})
        checker = audit_trace(path, "elect")
        assert checker.events_checked == 2

    def test_violation_carries_the_event_index(self, tmp_path):
        path = write_trace(tmp_path / "bad.jsonl", [
            decide(1, 0, "win"), decide(2, 1, "win"),
        ], meta={"task": "elect"})
        with pytest.raises(StreamingViolation) as info:
            audit_trace(path, "elect")
        assert info.value.invariant == "unique_winner"
        assert info.value.event_index == 1


class TestMalformedStreams:
    def assert_one_liner(self, error):
        """The error message must be a single line naming the stream."""
        message = str(error)
        assert "\n" not in message
        assert "Traceback" not in message

    def test_truncated_last_line_is_clean_stream_error(self, tmp_path):
        # The writer died mid-write: the last line is half a JSON object.
        path = write_trace(
            tmp_path / "cut.jsonl",
            [decide(1, 0, "win")],
            meta={"task": "elect"},
            tail='{"t": 2, "e": "proc.decide", "p": 1, "f": {"res',
        )
        with pytest.raises(StreamError) as info:
            audit_trace(path, "elect")
        self.assert_one_liner(info.value)
        assert "line 3" in str(info.value)
        assert "truncated or interleaved" in str(info.value)

    def test_interleaved_writers_are_clean_stream_error(self, tmp_path):
        # Two writers raced on the same file: a line is two objects
        # spliced together.
        good = event_line(decide(1, 0, "win"))
        path = tmp_path / "race.jsonl"
        with open(path, "w", encoding="utf-8") as fp:
            fp.write(good + "\n")
            fp.write(good[: len(good) // 2] + good + "\n")
        with pytest.raises(StreamError) as info:
            audit_trace(str(path), "elect")
        self.assert_one_liner(info.value)
        assert "line 2" in str(info.value)

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "list.jsonl"
        path.write_text('[1, 2, 3]\n', encoding="utf-8")
        with pytest.raises(StreamError) as info:
            audit_trace(str(path), "elect")
        self.assert_one_liner(info.value)

    def test_missing_event_keys_named(self, tmp_path):
        path = tmp_path / "keys.jsonl"
        path.write_text('{"t": 1, "e": "proc.decide"}\n', encoding="utf-8")
        with pytest.raises(StreamError) as info:
            audit_trace(str(path), "elect")
        self.assert_one_liner(info.value)
        assert "'f'" in str(info.value) and "'p'" in str(info.value)

    def test_fail_fast_off_collects_instead_of_raising(self, tmp_path):
        path = write_trace(tmp_path / "soft.jsonl", [
            decide(1, 0, "win"), decide(2, 1, "win"),
        ], meta={"task": "elect"})
        checker = audit_trace(path, "elect", fail_fast=False)
        assert any(
            violation.invariant == "unique_winner"
            for violation in checker.violations
        )
