"""Checkpointed exploration tests: identical verdicts, fewer ticks.

The contract under test is the one ``--checkpoint-every`` sells: forking
shrink candidates and systematic-tree trials from mid-schedule snapshots
changes *nothing* about what is found — verdicts, shrunk schedules,
artifacts, and trial stats are byte-identical to the uncheckpointed
paths — while the number of re-executed simulation ticks drops.
"""

from __future__ import annotations

from repro.check.explore import (
    TrialSpec,
    capture_run,
    explore,
    run_trial,
    run_trial_checkpointed,
    schedule_of,
)
from repro.check.invariants import INVARIANTS, PROTOCOLS, invariants_for
from repro.check.shrink import replay_artifact, shrink_schedule
from repro.sim.rng import derive_seed


def _seeded_schedule():
    """The committed negative control: naive sifter under coin_aware."""
    spec = PROTOCOLS["naive_sifter"]
    trial = TrialSpec(index=0, mode="random", adversary="coin_aware", seed=0)
    _, events = capture_run(spec, trial, 8, None)
    return spec, trial, schedule_of(events)


class TestCheckpointedShrink:
    def test_same_result_fewer_ticks(self):
        spec, trial, schedule = _seeded_schedule()
        witness = INVARIANTS["sifting_effective"].witness
        plain = shrink_schedule(
            spec, schedule, witness, 8, None, trial.seed
        )
        checkpointed = shrink_schedule(
            spec, schedule, witness, 8, None, trial.seed,
            checkpoint_every=16,
        )
        # Forks are byte-identical, so the search must take the exact
        # same path: same candidate count, same minimized schedule.
        assert checkpointed.evaluations == plain.evaluations
        assert checkpointed.schedule == plain.schedule
        assert checkpointed.shrunk_len == plain.shrunk_len
        # ...while skipping shared prefixes instead of re-executing them.
        assert checkpointed.ticks_replayed < plain.ticks_replayed

    def test_explore_threads_checkpointing_to_artifacts(self, tmp_path):
        report = explore(
            "naive_sifter", n=8, budget=6, seed=0,
            adversaries=("coin_aware",), modes=("random",),
            shrink=True, out_dir=str(tmp_path), checkpoint_every=16,
        )
        assert not report.ok
        record = report.violations[0]
        assert record.ticks_replayed is not None
        assert record.ticks_replayed > 0
        assert "ticks re-executed" in record.describe()
        # The artifact context is an uncheckpointed re-execution, so it
        # must replay byte-identically regardless of checkpointing.
        replay = replay_artifact(record.artifact_path)
        assert replay.ok, replay.describe()


class TestCheckpointedSystematicTree:
    def test_tree_trials_match_uncheckpointed(self):
        spec = PROTOCOLS["poison_pill"]
        tree_seed = derive_seed(0, "check/systematic/tree")
        prefixes = [(), (0,), (1,), (0, 0), (0, 1), (1, 0), (1, 1), (0, 0, 1)]
        trials = [
            TrialSpec(
                index=i, mode="systematic", adversary="systematic",
                seed=tree_seed, choices=choices,
            )
            for i, choices in enumerate(prefixes)
        ]
        invariants = [
            inv for inv in invariants_for(spec.task, None)
            if inv.scope == "run"
        ]
        store = {}
        for trial in trials:
            base = run_trial(spec, trial, 8, None, invariants)
            forked = run_trial_checkpointed(
                spec, trial, 8, None, invariants, "first", store
            )
            assert forked.stats == base.stats, trial.describe()
            assert forked.violations == base.violations
        # Shallow prefixes seeded the store for their descendants.
        assert () in store and (0,) in store

    def test_explore_systematic_mode_end_to_end(self):
        report = explore(
            "poison_pill", n=8, budget=12, seed=1,
            modes=("systematic",), shrink=False, checkpoint_every=8,
        )
        assert len(report.outcomes) == 12
        assert report.ok, report.describe()
