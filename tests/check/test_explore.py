"""Explorer tests: planning, determinism, and parallel equivalence."""

from __future__ import annotations

import pytest

from repro.check.explore import (
    DEFAULT_ADVERSARIES,
    SystematicAdversary,
    TrialSpec,
    capture_run,
    choice_prefixes,
    explore,
    plan_trials,
    schedule_of,
)
from repro.check.invariants import PROTOCOLS


class TestPlanning:
    def test_budget_is_exact(self):
        for budget in (1, 2, 7, 50):
            trials = plan_trials(budget, seed=0)
            assert len(trials) == budget
            assert [trial.index for trial in trials] == list(range(budget))

    def test_random_mode_gets_half_when_mixed(self):
        trials = plan_trials(40, seed=0)
        by_mode = {}
        for trial in trials:
            by_mode[trial.mode] = by_mode.get(trial.mode, 0) + 1
        assert by_mode["random"] == 20
        assert by_mode["crash"] + by_mode["systematic"] == 20

    def test_single_mode_gets_everything(self):
        trials = plan_trials(10, seed=0, modes=("random",))
        assert all(trial.mode == "random" for trial in trials)
        assert len(trials) == 10

    def test_plan_is_deterministic(self):
        assert plan_trials(30, seed=5) == plan_trials(30, seed=5)
        assert plan_trials(30, seed=5) != plan_trials(30, seed=6)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown modes"):
            plan_trials(5, seed=0, modes=("chaos",))

    def test_unknown_adversary_rejected(self):
        with pytest.raises(ValueError, match="unknown adversaries"):
            plan_trials(5, seed=0, adversaries=("mystery",))

    def test_adversary_rotation_covers_registry(self):
        trials = plan_trials(
            len(DEFAULT_ADVERSARIES) * 2, seed=0, modes=("random",)
        )
        assert {t.adversary for t in trials} == set(DEFAULT_ADVERSARIES)


class TestChoicePrefixes:
    def test_breadth_first_counts(self):
        prefixes = list(choice_prefixes(branching=2, depth=3))
        # 1 + 2 + 4 + 8 prefixes at depths 0..3.
        assert len(prefixes) == 15
        assert prefixes[0] == ()
        assert prefixes[1:3] == [(0,), (1,)]

    def test_validation(self):
        with pytest.raises(ValueError):
            list(choice_prefixes(branching=0, depth=2))


class TestDeterminism:
    def test_trial_is_pure_function_of_spec(self):
        spec = PROTOCOLS["poison_pill"]
        trial = TrialSpec(index=0, mode="random", adversary="coin_aware", seed=11)
        schedules = []
        for _ in range(2):
            _, events = capture_run(spec, trial, 16, None)
            schedules.append(schedule_of(events))
        assert schedules[0] == schedules[1]

    @pytest.mark.parametrize("adversary", DEFAULT_ADVERSARIES)
    def test_every_explorer_adversary_is_reproducible(self, adversary):
        spec = PROTOCOLS["heterogeneous"]
        trial = TrialSpec(index=0, mode="random", adversary=adversary, seed=4)
        first = schedule_of(capture_run(spec, trial, 8, None)[1])
        second = schedule_of(capture_run(spec, trial, 8, None)[1])
        assert first == second

    def test_crash_trial_is_reproducible(self):
        spec = PROTOCOLS["leader_election"]
        trial = TrialSpec(
            index=0, mode="crash", adversary="random", seed=9, crash_rate=0.05
        )
        first = schedule_of(capture_run(spec, trial, 8, None)[1])
        second = schedule_of(capture_run(spec, trial, 8, None)[1])
        assert first == second
        assert any(entry["e"] == "sched.crash" for entry in first)

    def test_parallel_equals_serial(self):
        serial = explore("poison_pill", n=8, budget=10, seed=2, workers=1,
                         shrink=False)
        parallel = explore("poison_pill", n=8, budget=10, seed=2, workers=2,
                           shrink=False)
        assert [o.stats for o in serial.outcomes] == [
            o.stats for o in parallel.outcomes
        ]
        assert serial.ok == parallel.ok


class TestSystematicAdversary:
    def test_prefix_changes_schedule(self):
        spec = PROTOCOLS["poison_pill"]
        base = TrialSpec(
            index=0, mode="systematic", adversary="systematic", seed=1,
            choices=(),
        )
        twisted = TrialSpec(
            index=1, mode="systematic", adversary="systematic", seed=1,
            choices=(3, 1, 2, 0, 3, 1),
        )
        first = schedule_of(capture_run(spec, base, 8, None)[1])
        second = schedule_of(capture_run(spec, twisted, 8, None)[1])
        assert first != second

    def test_reuse_resets_cursor(self):
        adversary = SystematicAdversary((1, 0, 2))
        spec = PROTOCOLS["poison_pill"]
        from repro.check.invariants import run_protocol
        from repro.obs.events import ListSink

        digests = []
        for _ in range(2):
            sink = ListSink()
            run_protocol(spec, 8, None, adversary, 7, sink=sink)
            digests.append(schedule_of(sink.events))
        assert digests[0] == digests[1]


class TestReportShape:
    def test_report_describe_mentions_modes_and_invariants(self):
        report = explore("renaming", n=6, budget=6, seed=1, shrink=False)
        text = report.describe()
        assert "renaming" in text
        assert "names_unique" in text
        assert "random=" in text
