"""Invariant registry tests: good protocols pass, broken ones are caught."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.check.explore import explore
from repro.check.invariants import (
    CORE_PROTOCOLS,
    INVARIANTS,
    PROTOCOLS,
    CheckContext,
    invariants_for,
)
from repro.core.protocol import Outcome


def fake_ctx(
    protocol: str,
    outcomes: dict[int, object],
    *,
    start_times: dict[int, int] | None = None,
    decide_times: dict[int, int] | None = None,
    crashed: frozenset[int] = frozenset(),
    undecided: frozenset[int] = frozenset(),
    terminated: bool = True,
    n: int | None = None,
):
    """A synthetic CheckContext for exercising run-scope checks directly."""
    start_times = start_times or {pid: pid + 1 for pid in outcomes}
    decide_times = decide_times or {pid: 100 + pid for pid in outcomes}
    decisions = {
        pid: SimpleNamespace(
            pid=pid,
            result=value,
            start_time=start_times[pid],
            decide_time=decide_times[pid],
        )
        for pid, value in outcomes.items()
    }
    result = SimpleNamespace(
        n=n if n is not None else max(len(outcomes), 1),
        decisions=decisions,
        crashed=crashed,
        undecided=undecided,
        terminated=terminated,
        start_times=dict(start_times),
    )
    run = SimpleNamespace(n=result.n, k=len(outcomes), result=result)
    return CheckContext(PROTOCOLS[protocol], run)


class TestRegistry:
    def test_core_protocols_are_registered_and_good(self):
        for name in CORE_PROTOCOLS:
            assert not PROTOCOLS[name].known_bad

    def test_naive_sifter_is_a_negative_control(self):
        assert PROTOCOLS["naive_sifter"].known_bad

    def test_unknown_invariant_name_raises(self):
        with pytest.raises(ValueError, match="unknown invariants"):
            invariants_for("sift", ["not_a_real_invariant"])

    def test_selection_filters_by_task(self):
        names = {inv.name for inv in invariants_for("elect")}
        assert "unique_winner" in names
        assert "at_least_one_survivor" not in names

    def test_every_invariant_cites_a_claim(self):
        for invariant in INVARIANTS.values():
            assert invariant.claim
            assert invariant.description


class TestRunScopeChecks:
    def test_unique_winner_flags_two_winners(self):
        ctx = fake_ctx(
            "leader_election", {0: Outcome.WIN, 1: Outcome.WIN, 2: Outcome.LOSE}
        )
        message = INVARIANTS["unique_winner"].check(ctx)
        assert message is not None and "[0, 1]" in message

    def test_unique_winner_accepts_single_winner(self):
        ctx = fake_ctx("leader_election", {0: Outcome.WIN, 1: Outcome.LOSE})
        assert INVARIANTS["unique_winner"].check(ctx) is None

    def test_winner_exists_flags_all_lose(self):
        ctx = fake_ctx("leader_election", {0: Outcome.LOSE, 1: Outcome.LOSE})
        assert INVARIANTS["winner_exists"].check(ctx) is not None

    def test_winner_exists_tolerates_crashed_winner(self):
        ctx = fake_ctx(
            "leader_election", {1: Outcome.LOSE}, crashed=frozenset({0})
        )
        assert INVARIANTS["winner_exists"].check(ctx) is None

    def test_linearizability_flags_early_loser(self):
        # The loser responded (t=2) before the winner even invoked (t=10):
        # no atomic test-and-set history can explain that LOSE.
        ctx = fake_ctx(
            "leader_election",
            {0: Outcome.WIN, 1: Outcome.LOSE},
            start_times={0: 10, 1: 1},
            decide_times={0: 20, 1: 2},
        )
        message = INVARIANTS["election_linearizable"].check(ctx)
        assert message is not None and "not linearizable" in message

    def test_linearizability_accepts_ordered_history(self):
        ctx = fake_ctx(
            "leader_election",
            {0: Outcome.WIN, 1: Outcome.LOSE},
            start_times={0: 1, 1: 2},
            decide_times={0: 5, 1: 9},
        )
        assert INVARIANTS["election_linearizable"].check(ctx) is None

    def test_at_least_one_survivor_flags_total_wipeout(self):
        ctx = fake_ctx("poison_pill", {0: Outcome.DIE, 1: Outcome.DIE})
        assert INVARIANTS["at_least_one_survivor"].check(ctx) is not None

    def test_at_least_one_survivor_ignores_crashed_runs(self):
        ctx = fake_ctx(
            "poison_pill",
            {0: Outcome.DIE, 1: Outcome.DIE},
            crashed=frozenset({2}),
        )
        assert INVARIANTS["at_least_one_survivor"].check(ctx) is None

    def test_no_false_death_flags_dying_singleton(self):
        ctx = fake_ctx("poison_pill", {0: Outcome.DIE})
        assert INVARIANTS["no_false_death"].check(ctx) is not None

    def test_names_unique_flags_duplicates(self):
        ctx = fake_ctx("renaming", {0: 3, 1: 3, 2: 0}, n=4)
        message = INVARIANTS["names_unique"].check(ctx)
        assert message is not None and "duplicate" in message

    def test_names_in_range_flags_overflow(self):
        ctx = fake_ctx("renaming", {0: 0, 1: 7}, n=4)
        assert INVARIANTS["names_in_range"].check(ctx) is not None
        assert INVARIANTS["names_in_range"].check(
            fake_ctx("renaming", {0: 0, 1: 3}, n=4)
        ) is None


class TestEndToEnd:
    """The checker must pass the real protocols and fail the broken one."""

    @pytest.mark.parametrize("protocol", CORE_PROTOCOLS)
    def test_core_protocols_pass_smoke_budget(self, protocol):
        report = explore(protocol, n=8, budget=12, seed=3, shrink=False)
        assert report.ok, report.describe()
        assert len(report.outcomes) == 12

    def test_naive_sifter_caught_by_ensemble_invariant(self):
        # Only the coin-aware adversary defeats the naive sifter; a pure
        # coin_aware batch keeps the test fast and deterministic.
        report = explore(
            "naive_sifter", n=8, budget=6, seed=0,
            adversaries=("coin_aware",), modes=("random",), shrink=False,
        )
        assert not report.ok
        violations = {record.invariant for record in report.violations}
        assert "sifting_effective" in violations
        record = report.violations[0]
        assert record.scope == "ensemble"
        assert "coin_aware" in record.message

    def test_real_sifters_survive_coin_aware_batch(self):
        # The same batch that kills the naive sifter must not flag the
        # paper's algorithms (the catch-22 of Section 1).
        for protocol in ("poison_pill", "heterogeneous"):
            report = explore(
                protocol, n=8, budget=6, seed=0,
                adversaries=("coin_aware",), modes=("random",), shrink=False,
            )
            assert report.ok, report.describe()
