"""Tests for happens-before reconstruction and message lineage.

Synthetic streams pin the chain-depth arithmetic exactly (a relay chain
has depth = hops, a fan-in takes the longest incoming chain, duplicates
are counted not corrupting); a real recorded election then checks the
analysis end-to-end through ``analyze_trace`` and the report renderers.
"""

from __future__ import annotations

from repro.obs.causality import (
    analyze_events,
    analyze_trace,
    critical_path_report,
    lineage_report,
)
from repro.obs.events import Event, EventType
from repro.obs.replay import record_trace


def _send(time, src, dst, kind="collect", call=0):
    """A synthetic msg.send event."""
    return Event(time, EventType.MSG_SEND, src,
                 {"src": src, "dst": dst, "kind": kind, "call": call})


def _deliver(time, src, dst, kind="collect", call=0):
    """A synthetic msg.deliver event."""
    return Event(time, EventType.MSG_DELIVER, dst,
                 {"src": src, "dst": dst, "kind": kind, "call": call})


def _decide(time, pid):
    """A synthetic proc.decide event."""
    return Event(time, EventType.PROC_DECIDE, pid, {"outcome": "win"})


class TestSyntheticChains:
    """Exact depth arithmetic on hand-built streams."""

    def test_relay_chain_depth_equals_hop_count(self):
        # 0 -> 1 -> 2 -> 3: each relay extends the chain by one.
        events = []
        for hop, (src, dst) in enumerate([(0, 1), (1, 2), (2, 3)]):
            events.append(_send(10 * hop, src, dst, call=hop))
            events.append(_deliver(10 * hop + 5, src, dst, call=hop))
        events.append(_decide(100, 3))
        report = analyze_events(events)
        assert report.depth_by_pid == {1: 1, 2: 2, 3: 3}
        assert report.decision_depths == {3: 3}
        assert report.max_decision_depth == 3
        chain = report.lineage(3)
        assert [(hop.src, hop.dst) for hop in chain] == [(0, 1), (1, 2), (2, 3)]
        assert [hop.depth for hop in chain] == [1, 2, 3]

    def test_fan_in_takes_longest_incoming_chain(self):
        # p2 hears from p0 directly (depth 1) and via p1 (depth 2):
        # its state sits at the deeper of the two.
        events = [
            _send(0, 0, 2, call=0), _deliver(1, 0, 2, call=0),
            _send(2, 0, 1, call=1), _deliver(3, 0, 1, call=1),
            _send(4, 1, 2, call=2), _deliver(5, 1, 2, call=2),
        ]
        report = analyze_events(events)
        assert report.depth_by_pid[2] == 2
        # A later shallow delivery must not lower the depth.
        more = events + [_send(6, 0, 2, call=3), _deliver(7, 0, 2, call=3)]
        assert analyze_events(more).depth_by_pid[2] == 2

    def test_duplicate_deliver_counted_not_corrupting(self):
        events = [
            _send(0, 0, 1), _deliver(1, 0, 1),
            _deliver(2, 0, 1),  # chaos duplicate: no waiting send
        ]
        report = analyze_events(events)
        assert report.matched_messages == 1
        assert report.unmatched_delivers == 1
        assert report.depth_by_pid[1] == 1

    def test_fifo_matching_per_channel(self):
        # Two same-channel sends: delivers consume them in order, so the
        # second delivery carries the second send's (deeper) context.
        events = [
            _send(0, 0, 1, call=7), _send(1, 0, 1, call=7),
            _deliver(2, 0, 1, call=7), _deliver(3, 0, 1, call=7),
        ]
        report = analyze_events(events)
        assert report.matched_messages == 2
        chain = report.lineage(1)
        assert chain[-1].send_time == 0  # first match set the depth-1 hop

    def test_decision_without_messages_has_depth_zero(self):
        report = analyze_events([_decide(5, 0)])
        assert report.decision_depths == {0: 0}
        assert report.lineage(0) == []


class TestRealTrace:
    """End-to-end over a recorded election."""

    def test_analyze_trace_of_recorded_election(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        recorded = record_trace(
            path, task="elect", n=12, adversary="random", seed=7
        )
        report = analyze_trace(path)
        assert report.events_seen == recorded.events
        assert len(report.decision_depths) == 12
        assert report.unmatched_delivers == 0
        assert report.max_decision_depth >= 1
        # Every decision's lineage terminates at its recorded depth.
        for pid, depth in report.decision_depths.items():
            chain = report.lineage(pid)
            assert len(chain) == depth

    def test_reports_render(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        record_trace(path, task="elect", n=8, adversary="sequential", seed=2)
        report = analyze_trace(path)
        text = critical_path_report(report, title="t")
        assert "max depth" in text and "matched messages" in text
        some_pid = next(iter(report.decision_depths))
        lineage = lineage_report(report, some_pid)
        assert f"message lineage of p{some_pid}" in lineage

    def test_lineage_report_for_uninfluenced_processor(self):
        report = analyze_events([])
        text = lineage_report(report, 3)
        assert "no message ever influenced" in text
