"""Unit tests for the deterministic metrics registry.

Pins the contracts telemetry rests on: log-bucketed histogram quantiles
stay within one octave of exact, snapshots round-trip losslessly through
``MetricsRegistry.from_snapshot``, merges are associative over the
counters a cluster view needs, and :class:`MetricsSink` folds a real
run's event stream into counts that agree with the simulator's own
``Metrics`` accounting — all derived from events, never perturbing them.
"""

from __future__ import annotations

import pytest

from repro.harness.runners import run_leader_election
from repro.obs.events import Event, EventType, ListSink
from repro.obs.metrics import (
    UNDERFLOW,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSink,
    bucket_exponent,
    merge_snapshots,
    snapshot_to_prometheus,
)


class TestPrimitives:
    """Counters, gauges, and the histogram bucket function."""

    def test_counter_increments_and_rejects_negative(self):
        counter = Counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(2.5)
        gauge.add(0.5)
        assert gauge.value == 3.0

    def test_bucket_exponent_boundaries(self):
        # Smallest e with value <= 2**e: powers of two land on their own
        # exponent, anything above spills to the next bucket.
        assert bucket_exponent(1) == 0
        assert bucket_exponent(2) == 1
        assert bucket_exponent(3) == 2
        assert bucket_exponent(4) == 2
        assert bucket_exponent(4.001) == 3
        assert bucket_exponent(1024) == 10
        assert bucket_exponent(0.5) == -1
        assert bucket_exponent(0) == UNDERFLOW
        assert bucket_exponent(-7) == UNDERFLOW


class TestHistogram:
    """Quantiles bounded by one octave, exact at the extremes."""

    def test_empty_histogram_is_zero(self):
        hist = Histogram("h")
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.p50 == 0.0

    def test_min_max_and_mean_are_exact(self):
        hist = Histogram("h")
        for value in (3, 1, 100, 7):
            hist.observe(value)
        assert hist.minimum == 1
        assert hist.maximum == 100
        assert hist.mean == pytest.approx(111 / 4)
        assert hist.quantile(0.0) == 1
        assert hist.quantile(1.0) == 100

    def test_quantile_within_one_octave(self):
        hist = Histogram("h")
        values = sorted([1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 100])
        for value in values:
            hist.observe(value)
        for q in (0.5, 0.9, 0.99):
            exact = values[round(q * (len(values) - 1))]
            estimate = hist.quantile(q)
            # Log-bucketing guarantees the estimate lies within the
            # exact value's bucket: a factor of two, never more.
            assert exact / 2 <= estimate <= exact * 2

    def test_single_observation_is_exact_everywhere(self):
        hist = Histogram("h")
        hist.observe(42)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == 42


class TestRegistry:
    """Get-or-create semantics, snapshots, round trips, and merges."""

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_snapshot_round_trips_through_from_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("sends").inc(7)
        registry.gauge("round").set(3)
        for value in (1, 5, 9, 200):
            registry.histogram("latency").observe(value)
        rebuilt = MetricsRegistry.from_snapshot(registry.snapshot())
        assert rebuilt.snapshot() == registry.snapshot()

    def test_merge_sums_counters_and_combines_histograms(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("sends").inc(3)
        right.counter("sends").inc(4)
        right.counter("only_right").inc(1)
        left.gauge("round").set(2)
        right.gauge("round").set(5)  # last writer wins
        left.histogram("lat").observe(1)
        right.histogram("lat").observe(100)
        merged = left.merge(right).snapshot()
        assert merged["counters"]["sends"] == 7
        assert merged["counters"]["only_right"] == 1
        assert merged["gauges"]["round"] == 5
        hist = merged["histograms"]["lat"]
        assert hist["count"] == 2
        assert hist["min"] == 1 and hist["max"] == 100

    def test_merge_snapshots_matches_registry_merge(self):
        registries = []
        for seed in (1, 2, 3):
            registry = MetricsRegistry()
            registry.counter("n").inc(seed)
            registry.histogram("h").observe(seed * 10)
            registries.append(registry)
        via_snapshots = merge_snapshots(r.snapshot() for r in registries)
        combined = MetricsRegistry()
        for registry in registries:
            combined.merge(registry)
        assert via_snapshots == combined.snapshot()

    def test_prometheus_exposition_names_and_types(self):
        registry = MetricsRegistry()
        registry.counter("net.frames_sent").inc(9)
        registry.gauge("sim.round").set(2)
        registry.histogram("rpc.latency-ms").observe(3)
        text = snapshot_to_prometheus(registry.snapshot())
        assert "# TYPE repro_net_frames_sent counter" in text
        assert "repro_net_frames_sent 9" in text
        assert "repro_sim_round 2" in text
        # Dots and dashes are both illegal in Prometheus names.
        assert "repro_rpc_latency_ms_count 1" in text
        assert "-" not in text.replace("# ", "")


class TestMetricsSink:
    """Folding a real election's event stream into the registry."""

    @pytest.fixture(scope="class")
    def run_and_registry(self):
        sink = ListSink()
        metrics_sink = MetricsSink()
        run = run_leader_election(
            n=16, adversary="random", seed=11, sink=sink,
            telemetry=metrics_sink,
        )
        return run, sink, metrics_sink.registry

    def test_event_counters_match_raw_stream(self, run_and_registry):
        _, sink, registry = run_and_registry
        snapshot = registry.snapshot()
        sends = sum(
            1 for event in sink.events if event.etype == EventType.MSG_SEND
        )
        assert snapshot["counters"]["events.msg.send"] == sends
        assert snapshot["counters"]["decisions"] == 16

    def test_message_counts_agree_with_sim_metrics(self, run_and_registry):
        run, _, registry = run_and_registry
        snapshot = registry.snapshot()
        by_kind = {
            name.removeprefix("messages."): count
            for name, count in snapshot["counters"].items()
            if name.startswith("messages.")
        }
        assert sum(by_kind.values()) == run.result.metrics.messages_total
        hist = snapshot["histograms"]["payload.cells"]
        assert hist["sum"] == run.result.metrics.payload_cells

    def test_comm_durations_cover_every_call(self, run_and_registry):
        _, sink, registry = run_and_registry
        calls = sum(
            1 for event in sink.events if event.etype == EventType.COMM_CALL
        )
        hist = registry.snapshot()["histograms"]["comm.duration_ticks"]
        assert hist["count"] == calls

    def test_snapshot_deterministic_for_fixed_seed(self):
        snapshots = []
        for _ in range(2):
            telemetry = MetricsSink()
            run_leader_election(
                n=16, adversary="random", seed=11, telemetry=telemetry,
            )
            snapshots.append(telemetry.registry.snapshot())
        assert snapshots[0] == snapshots[1]

    def test_attaching_sink_never_perturbs_the_stream(self):
        bare = ListSink()
        run_leader_election(n=12, adversary="sequential", seed=4, sink=bare)
        observed = ListSink()
        run_leader_election(
            n=12, adversary="sequential", seed=4, sink=observed,
            telemetry=MetricsSink(),
        )
        assert [
            (e.time, e.etype, e.pid) for e in bare.events
        ] == [(e.time, e.etype, e.pid) for e in observed.events]

    def test_sink_ignores_unknown_payloads(self):
        sink = MetricsSink()
        sink.emit(Event(1, EventType.MSG_SEND, 0, {"kind": "collect"}))
        sink.close()
        assert sink.registry.snapshot()["counters"]["messages.collect"] == 1
