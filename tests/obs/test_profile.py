"""Unit tests for wall-clock span profiling and its harness table."""

from __future__ import annotations

from repro.harness.tables import profile_table
from repro.obs.profile import Profiler
from repro.sim.runtime import Simulation
from repro.adversary import ADVERSARY_FACTORIES
from repro.core import make_leader_elect


def make_fake_clock(step: float = 1.0):
    state = {"now": 0.0}

    def clock() -> float:
        state["now"] += step
        return state["now"]

    return clock


def test_spans_accumulate_with_injected_clock():
    profiler = Profiler(clock=make_fake_clock())
    for _ in range(3):
        with profiler.span("work"):
            pass
    stats = profiler.get("work")
    assert stats.count == 3
    assert stats.total == 3.0  # each span: one clock tick
    assert stats.mean == 1.0 and stats.maximum == 1.0
    assert profiler.total_seconds() == 3.0
    assert bool(profiler)


def test_stats_sorted_by_total_and_merge():
    first = Profiler(clock=make_fake_clock())
    with first.span("cheap"):
        pass
    second = Profiler(clock=make_fake_clock(step=5.0))
    with second.span("dear"):
        pass
    first.merge(second)
    assert [stats.name for stats in first.stats()] == ["dear", "cheap"]
    assert not Profiler()


def test_profile_table_renders_spans():
    profiler = Profiler(clock=make_fake_clock())
    profiler.record("adversary.choose", 0.25)
    table = profile_table(profiler)
    text = table.render()
    assert "adversary.choose" in text
    assert "span" in text and "calls" in text


def test_runtime_records_spans_when_profiler_attached():
    profiler = Profiler()
    factory = make_leader_elect()
    sim = Simulation(
        n=8,
        participants={pid: factory for pid in range(8)},
        adversary=ADVERSARY_FACTORIES["random"](seed=0),
        seed=0,
        profiler=profiler,
    )
    sim.run()
    names = {stats.name for stats in profiler.stats()}
    assert "adversary.choose" in names
    assert {"execute.deliver", "execute.step"} <= names
