"""Tests for the live snapshot stream: writer, sink, readers, and tailing.

The stream contract: a canonical meta header, one canonical JSON
snapshot line per cadence tick, and an end marker — flushed per line so
another process can tail it mid-run.  Simulator-side snapshots carry
only logical-clock quantities, so for a fixed seed the whole stream must
be byte-identical across runs (the acceptance criterion for attaching
telemetry without losing determinism).
"""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.harness.runners import run_leader_election
from repro.obs.events import Event, EventType, RingBufferSink
from repro.obs.live import (
    LiveTelemetry,
    SnapshotWriter,
    follow_snapshots,
    read_snapshots,
    render_snapshot,
)


def _record_stream(path: str, seed: int = 5) -> str:
    """Run one seeded election with live telemetry; return the stream text."""
    telemetry = LiveTelemetry(str(path), meta={"task": "elect", "seed": seed})
    try:
        run_leader_election(
            n=16, adversary="random", seed=seed, telemetry=telemetry,
        )
    finally:
        telemetry.close()
    with open(path, "r", encoding="utf-8") as fp:
        return fp.read()


class TestSnapshotWriter:
    """Line discipline: canonical JSON, meta first, end marker last."""

    def test_lines_are_canonical_and_ordered(self):
        buffer = io.StringIO()
        writer = SnapshotWriter(buffer, meta={"task": "elect"})
        writer.write_snapshot(10, {"counters": {"a": 1}})
        writer.write_snapshot(20, {"counters": {"a": 2}})
        writer.write_end(20)
        lines = buffer.getvalue().splitlines()
        assert json.loads(lines[0])["meta"]["task"] == "elect"
        assert json.loads(lines[0])["meta"]["snapshot_format"] == 1
        assert [json.loads(line).get("seq") for line in lines[1:3]] == [1, 2]
        assert json.loads(lines[3])["end"] == {"clock": 20, "snapshots": 2}
        for line in lines:
            assert line == json.dumps(
                json.loads(line), sort_keys=True, separators=(",", ":")
            )

    def test_path_target_is_opened_and_closed(self, tmp_path):
        path = tmp_path / "s.jsonl"
        writer = SnapshotWriter(str(path))
        writer.write_snapshot(1, {})
        writer.close()
        meta, snapshots, end = read_snapshots(str(path))
        assert meta == {"snapshot_format": 1}
        assert len(snapshots) == 1 and end is None


class TestLiveTelemetry:
    """Cadence, determinism, and the ring-dropped counter."""

    def test_stream_is_deterministic_for_fixed_seed(self, tmp_path):
        first = _record_stream(tmp_path / "a.jsonl")
        second = _record_stream(tmp_path / "b.jsonl")
        assert first == second
        assert first  # non-empty: at least meta + final snapshot + end

    def test_snapshot_per_round_plus_final(self, tmp_path):
        path = str(tmp_path / "rounds.jsonl")
        _record_stream(path)
        _, snapshots, end = read_snapshots(path)
        rounds = [
            snap["metrics"]["gauges"].get("sim.round") for snap in snapshots
        ]
        # One snapshot per completed round plus the final close() one;
        # the round gauge must be non-decreasing along the stream.
        assert rounds == sorted(rounds)
        assert end is not None and end["snapshots"] == len(snapshots)

    def test_every_events_fallback_cadence(self):
        buffer = io.StringIO()
        telemetry = LiveTelemetry(buffer, every_events=3)
        for time in range(1, 8):
            telemetry.emit(Event(time, EventType.SCHED_STEP, 0, {}))
        telemetry.close()
        lines = [json.loads(l) for l in buffer.getvalue().splitlines()]
        snapshots = [obj for obj in lines if "metrics" in obj]
        # 7 events at every_events=3 -> ticks at 3 and 6, plus the final.
        assert [snap["clock"] for snap in snapshots] == [3, 6, 7]

    def test_every_events_must_be_positive(self):
        with pytest.raises(ValueError):
            LiveTelemetry(io.StringIO(), every_events=0)

    def test_ring_dropped_counter_surfaces_in_snapshots(self):
        # Satellite: bounded-buffer telemetry loss is visible, not silent.
        ring = RingBufferSink(capacity=2)
        buffer = io.StringIO()
        telemetry = LiveTelemetry(buffer, ring=ring)
        for time in range(5):
            event = Event(time, EventType.SCHED_STEP, 0, {})
            ring.emit(event)
            telemetry.emit(event)
        telemetry.close()
        assert ring.dropped == 3
        last = [json.loads(l) for l in buffer.getvalue().splitlines()][-2]
        assert last["metrics"]["counters"]["obs.ring_dropped"] == 3

    def test_close_is_idempotent(self):
        buffer = io.StringIO()
        telemetry = LiveTelemetry(buffer)
        telemetry.close()
        telemetry.close()
        lines = buffer.getvalue().splitlines()
        assert sum(1 for l in lines if "end" in json.loads(l)) == 1


class TestReaders:
    """read_snapshots, follow_snapshots, and the renderer."""

    def test_read_snapshots_rejects_non_snapshot_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"meta":{}}\n{"seq":1,"clock":2}\n')
        with pytest.raises(ValueError, match="missing 'metrics'"):
            read_snapshots(str(path))

    def test_follow_reads_through_end_marker(self, tmp_path):
        path = str(tmp_path / "f.jsonl")
        _record_stream(path)
        objects = list(follow_snapshots(path, poll_interval=0.01, timeout=5))
        assert "meta" in objects[0]
        assert "end" in objects[-1]
        assert all("metrics" in obj for obj in objects[1:-1])

    def test_follow_times_out_without_end_marker(self, tmp_path):
        path = tmp_path / "stalled.jsonl"
        path.write_text('{"meta":{}}\n')
        with pytest.raises(TimeoutError):
            list(follow_snapshots(str(path), poll_interval=0.01, timeout=0.05))

    def test_follow_sees_lines_written_while_tailing(self, tmp_path):
        path = str(tmp_path / "tail.jsonl")
        writer = SnapshotWriter(path, meta={})

        def produce() -> None:
            for clock in (1, 2):
                writer.write_snapshot(clock, {"counters": {}})
            writer.write_end(2)
            writer.close()

        thread = threading.Timer(0.05, produce)
        thread.start()
        try:
            objects = list(
                follow_snapshots(path, poll_interval=0.01, timeout=5)
            )
        finally:
            thread.join()
        assert [obj.get("clock") for obj in objects if "seq" in obj] == [1, 2]
        assert "end" in objects[-1]

    def test_render_snapshot_mentions_every_section(self):
        obj = {
            "seq": 2,
            "clock": 99,
            "metrics": {
                "counters": {"sends": 4},
                "gauges": {"round": 1},
                "histograms": {
                    "lat": {"count": 2, "mean": 3, "p50": 2, "p90": 4,
                            "p99": 4, "max": 4},
                },
            },
        }
        text = render_snapshot(obj, meta={"task": "elect", "n": 8})
        assert "task=elect" in text and "n=8" in text
        assert "sends=4" in text and "round=1" in text
        assert "lat: n=2" in text and "p99=4" in text
