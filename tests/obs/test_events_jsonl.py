"""Unit tests for the event schema, sinks, and JSONL round-tripping."""

from __future__ import annotations

import enum
import json

import pytest

from repro.obs.events import (
    CallbackSink,
    Event,
    EventType,
    ListSink,
    MultiSink,
    RingBufferSink,
    combine_sinks,
    json_safe,
)
from repro.obs.jsonl import (
    JsonlSink,
    event_line,
    event_to_obj,
    obj_to_event,
    read_events,
    read_trace,
    write_events,
)


class Color(enum.Enum):
    RED = "red"


def test_json_safe_handles_simulator_value_types():
    assert json_safe(Color.RED) == "red"
    assert json_safe(frozenset({3, 1, 2})) == [1, 2, 3]
    assert json_safe({"b": (1, 2), "a": None}) == {"b": [1, 2], "a": None}
    assert json_safe((True, 1.5, "x")) == [True, 1.5, "x"]
    # Unknown objects degrade to a deterministic repr, never an error.
    assert isinstance(json_safe(object()), str)


def test_event_line_is_canonical_and_round_trips():
    event = Event(7, EventType.MSG_SEND, 2, {"kind": "collect", "dst": 5})
    line = event_line(event)
    assert line == json.dumps(json.loads(line), sort_keys=True, separators=(",", ":"))
    back = obj_to_event(json.loads(line))
    assert (back.time, back.etype, back.pid) == (7, "msg.send", 2)
    assert dict(back.fields) == {"kind": "collect", "dst": 5}
    assert event_to_obj(event)["e"] == "msg.send"


def test_list_and_ring_sinks():
    events = [Event(i, EventType.SCHED_STEP, i % 2, {}) for i in range(5)]
    listed = ListSink()
    ring = RingBufferSink(capacity=3)
    for event in events:
        listed.emit(event)
        ring.emit(event)
    assert len(listed.events) == 5
    assert listed.of_type(EventType.SCHED_STEP) == events
    assert [event.time for event in ring.events] == [2, 3, 4]


def test_multi_and_callback_sinks_and_combine():
    seen: list[int] = []
    callback = CallbackSink(lambda event: seen.append(event.time))
    listed = ListSink()
    multi = combine_sinks([callback, listed])
    assert isinstance(multi, MultiSink)
    multi.emit(Event(1, EventType.SCHED_STEP, 0, {}))
    multi.close()
    assert seen == [1] and len(listed.events) == 1
    assert combine_sinks([]) is None
    assert combine_sinks([listed]) is listed


def test_jsonl_sink_writes_meta_then_events(tmp_path):
    path = str(tmp_path / "out.jsonl")
    sink = JsonlSink(path, meta={"task": "elect", "n": 4})
    sink.emit(Event(0, EventType.SCHED_STEP, 1, {}))
    sink.emit(Event(1, EventType.PROC_DECIDE, 1, {"result": "win"}))
    sink.close()
    meta, objects = read_trace(path)
    assert meta == {"task": "elect", "n": 4}
    assert [obj["e"] for obj in objects] == ["sched.step", "proc.decide"]
    events = read_events(path)
    assert [event.etype for event in events] == ["sched.step", "proc.decide"]


def test_write_and_read_events_helpers(tmp_path):
    path = str(tmp_path / "w.jsonl")
    events = [Event(t, EventType.COIN_FLIP, 0, {"value": t % 2}) for t in range(3)]
    write_events(path, events, meta={"n": 1})
    assert [event.time for event in read_events(path)] == [0, 1, 2]


def test_frozen_event_rejects_mutation():
    event = Event(0, EventType.SCHED_STEP, 0, {})
    with pytest.raises(AttributeError):
        event.time = 1
