"""Aggregator rollups validated against the simulator's internal state.

The critical invariant: survivor curves derived from the event stream
must equal the round loop's own record of each sifting outcome — the
``le.round_outcome`` register every participant writes locally (never
propagated) as it exits a round.
"""

from __future__ import annotations

import pytest

from repro.adversary import ADVERSARY_FACTORIES
from repro.core import Outcome, make_leader_elect
from repro.obs.aggregate import TraceAggregator, aggregate_events
from repro.obs.events import Event, EventType, ListSink
from repro.sim.runtime import Simulation


def _run_election(n: int, seed: int, sink) -> Simulation:
    factory = make_leader_elect()
    sim = Simulation(
        n=n,
        participants={pid: factory for pid in range(n)},
        adversary=ADVERSARY_FACTORIES["random"](seed=seed),
        seed=seed,
        sink=sink,
    )
    sim.run()
    return sim


def _ground_truth(sim: Simulation) -> tuple[dict[int, int], dict[int, int]]:
    """Per-round survive/die counts from the ``le.round_outcome`` registers."""
    survived: dict[int, int] = {}
    died: dict[int, int] = {}
    for process in sim.processes:
        r = 1
        while True:
            outcome = process.registers.get("le.round_outcome", r)
            if outcome is None:
                break
            bucket = survived if outcome is Outcome.SURVIVE else died
            bucket[r] = bucket.get(r, 0) + 1
            r += 1
    return survived, died


@pytest.mark.parametrize("n", [8, 32])
@pytest.mark.parametrize("seed", range(5))
def test_survivor_curve_matches_round_loop_internals(n, seed):
    aggregator = TraceAggregator()
    sim = _run_election(n, seed, aggregator)
    survived, died = _ground_truth(sim)
    # The aggregator also sees rounds no register records — the eventual
    # winner's final PreRound ends the loop before any sifting outcome is
    # written — so compare on the rounds the round loop itself completed.
    curve = aggregator.survivors_by_round()
    assert {r: count for r, count in curve.items() if count} == survived
    by_round = {stats.round: stats for stats in aggregator.survivor_curve()}
    assert {r: stats.died for r, stats in by_round.items() if stats.died} == died
    # Every processor that completed round r (survive or die) shows up.
    for r, stats in by_round.items():
        assert stats.completed == survived.get(r, 0) + died.get(r, 0)


def test_phase_stats_match_round_exits():
    aggregator = TraceAggregator()
    _run_election(16, 2, aggregator)
    # Each hpp namespace's survive count equals the matching round's.
    survivors = aggregator.survivors_by_round()
    for stats in aggregator.phase_stats():
        assert stats.kind == "hpp"
        round_index = int(stats.namespace.removeprefix("le.hpp"))
        assert stats.survived == survivors.get(round_index, 0)
        assert stats.entered >= stats.survived + stats.died


def test_message_histogram_and_comm_calls_match_metrics():
    aggregator = TraceAggregator()
    sim = _run_election(8, 0, aggregator)
    metrics = sim.metrics
    assert aggregator.messages_total == metrics.messages_total
    assert aggregator.max_comm_calls == metrics.max_comm_calls
    assert aggregator.comm_calls_by == {
        pid: count
        for pid, count in enumerate(metrics.comm_calls_by)
        if count
    }


def test_decisions_and_report_render():
    aggregator = TraceAggregator()
    sim = _run_election(8, 1, aggregator)
    outcomes = aggregator.outcome_histogram()
    assert outcomes.get("win") == 1
    assert outcomes.get("lose") == 7
    assert len(aggregator.decisions) == 8
    text = aggregator.report(title="t")
    assert "per-round survivors" in text
    assert "messages by kind" in text
    summary = aggregator.comm_duration_summary()
    assert summary is not None and summary.mean > 0
    assert aggregator.comm_timeline(0) == aggregator.comm_durations_by.get(0, [])


def test_streaming_equals_batch():
    sink = ListSink()
    _run_election(8, 4, sink)
    streamed = TraceAggregator().feed(sink.events)
    batch = aggregate_events(sink.events)
    assert streamed.survivors_by_round() == batch.survivors_by_round()
    assert streamed.message_histogram == batch.message_histogram
    assert streamed.events_seen == batch.events_seen == len(sink.events)


def test_preround_tallies():
    event = Event(0, EventType.PREROUND, 3, {"round": 2, "verdict": "win"})
    aggregator = aggregate_events([event])
    (stats,) = aggregator.survivor_curve()
    assert (stats.round, stats.entered, stats.preround_wins) == (2, 1, 1)
