"""Tests for the shared-memory (register-based) tournament baseline."""

from __future__ import annotations

import pytest

from repro.core import Outcome
from repro.memory import make_register_tournament
from repro.sim import Simulation

from ..conftest import ALL_ADVERSARY_NAMES, fresh_adversary


def run_tournament(n, adversary, seed, k=None):
    participants = {
        pid: make_register_tournament() for pid in range(k if k else n)
    }
    sim = Simulation(n, participants, adversary, seed=seed)
    result = sim.run()
    winners = [pid for pid, o in result.outcomes.items() if o is Outcome.WIN]
    losers = [pid for pid, o in result.outcomes.items() if o is Outcome.LOSE]
    return winners, losers, result


class TestUniqueWinner:
    @pytest.mark.parametrize("name", ALL_ADVERSARY_NAMES)
    def test_every_adversary(self, name):
        winners, losers, _ = run_tournament(8, fresh_adversary(name, 5), seed=5)
        assert len(winners) == 1
        assert len(losers) == 7

    @pytest.mark.parametrize("seed", range(10))
    def test_many_seeds(self, seed):
        winners, _, _ = run_tournament(8, fresh_adversary("random", seed), seed=seed)
        assert len(winners) == 1

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 6, 8, 11])
    def test_odd_and_even_sizes(self, n):
        winners, _, _ = run_tournament(n, fresh_adversary("random", 2), seed=2)
        assert len(winners) == 1

    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_byes_with_partial_participation(self, k):
        winners, _, _ = run_tournament(8, fresh_adversary("random", 3), seed=3, k=k)
        assert len(winners) == 1


class TestEmulationShape:
    def test_solo_contender_wins_without_waiting(self):
        winners, _, result = run_tournament(8, fresh_adversary("eager"), seed=0, k=1)
        assert winners == [0]

    def test_time_grows_with_bracket_depth(self):
        _, _, small = run_tournament(4, fresh_adversary("eager"), seed=0)
        _, _, large = run_tournament(32, fresh_adversary("eager"), seed=0)
        assert (
            large.metrics.max_comm_calls > small.metrics.max_comm_calls
        )

    def test_register_ops_cost_two_calls_each(self):
        """Every ABD operation is exactly two communicate calls, so call
        counts are even."""
        _, _, result = run_tournament(4, fresh_adversary("eager"), seed=1)
        for pid, calls in enumerate(result.metrics.comm_calls_by):
            assert calls % 2 == 0, f"processor {pid} made {calls} calls"

    def test_emulation_costs_more_than_native(self):
        """[ABND95]: emulation preserves time shape but costs extra
        communication relative to the native message-passing tournament."""
        from repro.core.baselines import make_tournament

        n, seed = 16, 4
        sim_native = Simulation(
            n,
            {pid: make_tournament() for pid in range(n)},
            fresh_adversary("eager"),
            seed=seed,
        )
        native = sim_native.run()
        sim_emulated = Simulation(
            n,
            {pid: make_register_tournament() for pid in range(n)},
            fresh_adversary("eager"),
            seed=seed,
        )
        emulated = sim_emulated.run()
        assert emulated.metrics.messages_total > native.metrics.messages_total * 0.5
        # Within a constant factor in time (no extra log factors).
        ratio = emulated.metrics.max_comm_calls / native.metrics.max_comm_calls
        assert ratio < 10
