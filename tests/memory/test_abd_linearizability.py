"""ABD emulation vs the brute-force checker: real histories, all schedulers.

Each participant performs exactly one register operation, so every
execution yields a small concurrent history with genuine real-time
intervals (taken from the simulation clock).  The checker then searches
for a witness linearization — which must exist for every adversary and
every seed if the emulation is correct.
"""

from __future__ import annotations

import pytest

from repro.analysis.linearizability import (
    READ,
    WRITE,
    RegisterOp,
    assert_register_linearizable,
)
from repro.memory.abd import AtomicRegister
from repro.sim import Simulation

from ..conftest import ALL_ADVERSARY_NAMES, fresh_adversary


def one_write(value):
    def algorithm(api):
        register = AtomicRegister("r")
        yield from register.write(api, value)
        return (WRITE, value)

    return algorithm


def one_read(api):
    register = AtomicRegister("r")
    value = yield from register.read(api)
    return (READ, value)


def history_from(result):
    ops = []
    for pid, decision in result.decisions.items():
        kind, value = decision.result
        ops.append(
            RegisterOp(
                proc=pid,
                kind=kind,
                value=value,
                invoked=decision.start_time,
                responded=decision.decide_time,
            )
        )
    return ops


def run_history(n, participants, adversary, seed):
    sim = Simulation(n, participants, adversary, seed=seed)
    result = sim.run()
    return history_from(result)


class TestRealHistoriesLinearizable:
    @pytest.mark.parametrize("name", ALL_ADVERSARY_NAMES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_two_writers_two_readers(self, name, seed):
        participants = {
            0: one_write("a"),
            1: one_write("b"),
            2: one_read,
            3: one_read,
        }
        ops = run_history(9, participants, fresh_adversary(name, seed), seed)
        assert_register_linearizable(ops, initial=None)

    @pytest.mark.parametrize("seed", range(12))
    def test_three_writers_three_readers_random(self, seed):
        participants = {pid: one_write(f"v{pid}") for pid in range(3)}
        participants.update({pid: one_read for pid in range(3, 6)})
        ops = run_history(7, participants, fresh_adversary("random", seed), seed)
        assert_register_linearizable(ops, initial=None)

    @pytest.mark.parametrize("seed", range(6))
    def test_fragmented_views(self, seed):
        participants = {pid: one_write(f"v{pid}") for pid in range(2)}
        participants.update({pid: one_read for pid in range(2, 6)})
        ops = run_history(
            8, participants, fresh_adversary("quorum_split", seed), seed
        )
        assert_register_linearizable(ops, initial=None)

    def test_sequential_history_is_strictly_ordered(self):
        participants = {
            0: one_write("first"),
            1: one_write("second"),
            2: one_read,
        }
        ops = run_history(7, participants, fresh_adversary("sequential"), 0)
        witness = assert_register_linearizable(ops, initial=None)
        # Fully sequential: the read (last) must return the last write.
        read_ops = [op for op in ops if op.kind == READ]
        assert read_ops[0].value == "second"
        assert [op.proc for op in witness] == [0, 1, 2]
