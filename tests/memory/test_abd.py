"""Tests for the ABD atomic-register emulation.

The load-bearing property is linearizability: every read returns a value
at least as fresh as any write (or read-back) that completed before the
read started — under every scheduling strategy.
"""

from __future__ import annotations

import pytest

from repro.adversary import SequentialAdversary
from repro.memory.abd import AtomicRegister, Stamped
from repro.sim import Simulation

from ..conftest import ALL_ADVERSARY_NAMES, fresh_adversary


class TestStamped:
    def test_ordering_by_sequence(self):
        assert Stamped(1, 0, "a") < Stamped(2, 0, "b")

    def test_ties_broken_by_writer(self):
        assert Stamped(1, 0, "a") < Stamped(1, 1, "b")

    def test_payload_never_compared(self):
        # Payloads are not orderable; stamps decide everything.
        first = Stamped(1, 0, object())
        second = Stamped(2, 0, object())
        assert first < second
        assert max([first, second]) is second

    def test_equality_and_hash(self):
        assert Stamped(3, 1, "x") == Stamped(3, 1, "y")
        assert hash(Stamped(3, 1, "x")) == hash(Stamped(3, 1, "y"))


def writer_then_value(register_name, value):
    def algorithm(api):
        register = AtomicRegister(register_name)
        yield from register.write(api, value)
        return "wrote"

    return algorithm


def reader(register_name):
    def algorithm(api):
        register = AtomicRegister(register_name, default="initial")
        result = yield from register.read(api)
        return result

    return algorithm


class TestReadWrite:
    def test_read_of_unwritten_returns_default(self):
        sim = Simulation(5, {0: reader("r")}, fresh_adversary("eager"), seed=0)
        assert sim.run().outcomes[0] == "initial"

    def test_read_after_write_sees_value(self):
        """A read starting after a completed write returns it — for every
        scheduling strategy (sequential order forces the real-time edge)."""
        for seed in range(5):
            sim = Simulation(
                5,
                {0: writer_then_value("r", "fresh"), 1: reader("r")},
                SequentialAdversary(order=[0, 1]),
                seed=seed,
            )
            outcomes = sim.run().outcomes
            assert outcomes[1] == "fresh"

    @pytest.mark.parametrize("name", ALL_ADVERSARY_NAMES)
    def test_concurrent_ops_terminate(self, name):
        participants = {
            0: writer_then_value("r", "a"),
            1: writer_then_value("r", "b"),
            2: reader("r"),
            3: reader("r"),
        }
        sim = Simulation(7, participants, fresh_adversary(name, 4), seed=4)
        result = sim.run()
        assert result.terminated
        for pid in (2, 3):
            assert result.outcomes[pid] in ("a", "b", "initial")

    def test_last_writer_wins_sequentially(self):
        sim = Simulation(
            5,
            {
                0: writer_then_value("r", "first"),
                1: writer_then_value("r", "second"),
                2: reader("r"),
            },
            SequentialAdversary(order=[0, 1, 2]),
            seed=1,
        )
        assert sim.run().outcomes[2] == "second"

    def test_registers_are_independent(self):
        sim = Simulation(
            5,
            {
                0: writer_then_value("left", "L"),
                1: writer_then_value("right", "R"),
                2: reader("left"),
                3: reader("right"),
            },
            SequentialAdversary(order=[0, 1, 2, 3]),
            seed=0,
        )
        outcomes = sim.run().outcomes
        assert outcomes[2] == "L"
        assert outcomes[3] == "R"

    def test_write_returns_increasing_stamps(self):
        def double_writer(api):
            register = AtomicRegister("r")
            first = yield from register.write(api, 1)
            second = yield from register.write(api, 2)
            return (first, second)

        sim = Simulation(4, {0: double_writer}, fresh_adversary("eager"), seed=0)
        first, second = sim.run().outcomes[0]
        assert first < second


class TestNoNewOldInversion:
    """The write-back phase: once some read returned v (stamp t), every
    read that *starts after that read completed* returns a stamp >= t."""

    @pytest.mark.parametrize("name", ["random", "quorum_split", "oblivious"])
    @pytest.mark.parametrize("seed", range(4))
    def test_sequential_readers_monotone(self, name, seed):
        def chained_reader(api):
            register = AtomicRegister("r", default=None)
            values = []
            for _ in range(3):
                value = yield from register.read(api)
                values.append(value)
            return values

        participants = {
            0: writer_then_value("r", "v1"),
            1: writer_then_value("r", "v2"),
            2: chained_reader,
        }
        sim = Simulation(7, participants, fresh_adversary(name, seed), seed=seed)
        values = sim.run().outcomes[2]
        # Within one reader, stamps are non-decreasing, so the value
        # sequence never revisits an abandoned value: None cannot follow
        # a real value, and compressing consecutive duplicates must leave
        # all-distinct entries (v1 -> v2 -> v1 would be an inversion).
        seen_value = False
        for value in values:
            if value is not None:
                seen_value = True
            else:
                assert not seen_value, "read regressed to the initial value"
        compressed = [values[0]] if values else []
        for value in values[1:]:
            if value != compressed[-1]:
                compressed.append(value)
        assert len(compressed) == len(set(compressed)), (
            f"new-old inversion across reads: {values}"
        )
