"""Quality gate on the public API surface.

Every name exported through ``__all__`` must resolve, and every public
module, class, and function must carry a docstring — the documentation
contract of deliverable (e).
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

PUBLIC_PACKAGES = [
    "repro",
    "repro.sim",
    "repro.adversary",
    "repro.core",
    "repro.core.baselines",
    "repro.core.extensions",
    "repro.memory",
    "repro.analysis",
    "repro.harness",
    "repro.obs",
    "repro.check",
    "repro.net",
]


def iter_public_modules():
    seen = []
    for package_name in PUBLIC_PACKAGES:
        package = importlib.import_module(package_name)
        seen.append(package)
        for info in pkgutil.iter_modules(package.__path__):
            if not info.name.startswith("_"):
                seen.append(importlib.import_module(f"{package_name}.{info.name}"))
    return seen


ALL_MODULES = iter_public_modules()


@pytest.mark.parametrize("package_name", PUBLIC_PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", [])
    assert exported, f"{package_name} must declare __all__"
    for name in exported:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize(
    "module", ALL_MODULES, ids=lambda module: module.__name__
)
def test_module_docstrings(module):
    assert module.__doc__, f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize(
    "module", ALL_MODULES, ids=lambda module: module.__name__
)
def test_public_members_documented(module):
    undocumented = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not inspect.getdoc(member):
            undocumented.append(name)
        if inspect.isclass(member):
            for method_name in vars(member):
                if method_name.startswith("_"):
                    continue
                method = getattr(member, method_name, None)
                if inspect.isfunction(method) and not inspect.getdoc(method):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module.__name__} has undocumented public members: {undocumented}"
    )


def test_version_is_exposed():
    assert repro.__version__


def test_quickstart_snippet_from_readme():
    """The README's quickstart must keep working verbatim."""
    from repro import run_leader_election

    run = run_leader_election(n=32, adversary="random", seed=1)
    assert run.winner is not None
    assert run.max_comm_calls > 0
    assert run.messages_total > 0
