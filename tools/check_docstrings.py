#!/usr/bin/env python3
"""Docstring coverage lint for the ``repro`` package.

Walks every module under ``src/repro`` with :mod:`ast` (no imports, so
it is cheap and side-effect free) and reports each public module, class,
function, and method that lacks a docstring.  Public means the name does
not start with ``_``; ``__init__`` and other dunders are exempt (their
contract is the class's), as is anything nested inside a function.

Usage::

    python tools/check_docstrings.py [SRC_ROOT]

Exits 0 when coverage is complete, 1 with an offender listing otherwise.
The same walk is asserted by ``tests/test_docstring_coverage.py``, which
is how CI enforces it.
"""

from __future__ import annotations

import ast
import os
import sys

#: Default package root, relative to the repository root.
DEFAULT_ROOT = os.path.join("src", "repro")


def iter_python_files(root: str):
    """Yield every ``.py`` path under ``root``, sorted for stable output."""
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _walk_definitions(node: ast.AST, qualname: str):
    """Yield ``(qualname, def_node)`` for public defs lexically in ``node``.

    Recurses through classes but not through function bodies: helpers
    defined inside a function are implementation detail, not API.
    """
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if not _is_public(child.name):
                continue
            child_qualname = f"{qualname}.{child.name}"
            yield child_qualname, child
            if isinstance(child, ast.ClassDef):
                yield from _walk_definitions(child, child_qualname)


def missing_docstrings(root: str = DEFAULT_ROOT) -> list[str]:
    """The qualified names under ``root`` that lack a docstring."""
    offenders: list[str] = []
    for path in iter_python_files(root):
        relative = os.path.relpath(path, root)
        module = os.path.splitext(relative)[0].replace(os.sep, ".")
        if module.endswith("__init__"):
            module = module[: -len(".__init__")] or "repro"
        with open(path, "r", encoding="utf-8") as fp:
            tree = ast.parse(fp.read(), filename=path)
        if ast.get_docstring(tree) is None:
            offenders.append(f"{module} (module)")
        for qualname, node in _walk_definitions(tree, module):
            if ast.get_docstring(node) is None:
                kind = "class" if isinstance(node, ast.ClassDef) else "function"
                offenders.append(f"{qualname} ({kind}, line {node.lineno})")
    return offenders


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = sys.argv[1:] if argv is None else argv
    root = args[0] if args else DEFAULT_ROOT
    offenders = missing_docstrings(root)
    if offenders:
        print(f"{len(offenders)} public definition(s) missing docstrings:")
        for offender in offenders:
            print(f"  {offender}")
        return 1
    print(f"docstring coverage OK under {root}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
