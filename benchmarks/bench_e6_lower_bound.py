"""E6 — Corollary B.3: the Omega(alpha k n) message lower bound, realized.

The bubble adversary of Theorem B.2 buffers all traffic of a quarter of
the participants until n/4 messages pile up per member, forcing the
protocol to pay the lower-bound floor of k*n/16 messages.  The bench
measures realized message counts under this strategy (and under the fair
scheduler, for reference) against the analytic floor.
"""

from __future__ import annotations

from _common import grid, mean_of, once, run_sweep

from repro.adversary import BubbleAdversary
from repro.analysis.theory import message_lower_bound
from repro.harness import Table, run_leader_election

NS = grid([8, 16, 32, 64], [8, 16, 32, 64, 128])


def build_e6():
    bubble_cells = run_sweep(
        NS,
        lambda n, seed: run_leader_election(
            n=n, adversary=BubbleAdversary(), seed=seed
        ),
        seed_base=60,
    )
    fair_cells = run_sweep(
        NS,
        lambda n, seed: run_leader_election(n=n, adversary="random", seed=seed),
        seed_base=61,
    )
    return bubble_cells, fair_cells


def report_e6(bubble_cells, fair_cells):
    bubble = mean_of(bubble_cells, lambda run: run.messages_total)
    fair = mean_of(fair_cells, lambda run: run.messages_total)
    table = Table(
        "E6: message lower bound (bubble adversary of Theorem B.2)",
        ["n=k", "floor kn/16", "messages(bubble)", "messages(random)", "bubble/floor"],
    )
    for n in NS:
        floor = message_lower_bound(n, n)
        table.add_row(n, floor, bubble[n], fair[n], bubble[n] / floor)
    table.add_note(
        "paper: every leader-election algorithm pays >= alpha*k*n/16 messages"
    )
    table.show()
    return bubble, fair


def test_e6_lower_bound(benchmark):
    bubble_cells, fair_cells = once(benchmark, build_e6)
    bubble, fair = report_e6(bubble_cells, fair_cells)
    for n in NS:
        floor = message_lower_bound(n, n)
        # The realized executions respect the analytic floor...
        assert bubble[n] >= floor
        assert fair[n] >= floor
        # ...and stay within the O(kn) upper bound's constant regime.
        assert bubble[n] <= 200 * n * n
