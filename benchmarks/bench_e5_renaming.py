"""E5 — Theorems 4.2 and A.13: renaming in O(log^2 n) time, O(n^2) messages.

The paper's balls-into-bins renaming (Figure 3) against the
no-shared-state baseline that tries names in private random order
([AAG+10]-style, Omega(n) trials for a late processor).  Series: max
trials by any processor, max communicate calls (time), total messages.
"""

from __future__ import annotations

from _common import grid, mean_of, once, run_sweep

from repro.analysis.fitting import fit_power
from repro.analysis.theory import renaming_time_bound
from repro.harness import Table, run_renaming

NS = grid([4, 8, 16, 24], [4, 8, 16, 32, 48, 64])


def build_e5():
    paper_cells = run_sweep(
        NS,
        lambda n, seed: run_renaming(
            n=n, algorithm="paper", adversary="random", seed=seed
        ),
        seed_base=50,
    )
    linear_cells = run_sweep(
        NS,
        lambda n, seed: run_renaming(
            n=n, algorithm="linear", adversary="random", seed=seed
        ),
        seed_base=51,
    )
    return paper_cells, linear_cells


def report_e5(paper_cells, linear_cells):
    paper_trials = mean_of(paper_cells, lambda run: run.max_trials)
    paper_calls = mean_of(paper_cells, lambda run: run.max_comm_calls)
    paper_messages = mean_of(paper_cells, lambda run: run.messages_total)
    linear_trials = mean_of(linear_cells, lambda run: run.max_trials)
    linear_calls = mean_of(linear_cells, lambda run: run.max_comm_calls)
    table = Table(
        "E5: strong renaming, paper's algorithm vs blind-trials baseline",
        [
            "n",
            "trials(paper)",
            "trials(blind)",
            "calls(paper)",
            "calls(blind)",
            "log^2(n)",
            "messages(paper)",
            "msgs/n^2",
        ],
    )
    for n in NS:
        table.add_row(
            n,
            paper_trials[n],
            linear_trials[n],
            paper_calls[n],
            linear_calls[n],
            renaming_time_bound(n),
            paper_messages[n],
            paper_messages[n] / (n * n),
        )
    message_fit = fit_power(NS, [paper_messages[n] for n in NS])
    table.add_note(
        f"message growth exponent {message_fit.slope:.2f} (paper: O(n^2))"
    )
    table.add_note("paper: O(log^2 n) time; baseline trials grow linearly-ish")
    table.show()
    return paper_trials, linear_trials, paper_calls, linear_calls, message_fit


def test_e5_renaming(benchmark):
    paper_cells, linear_cells = once(benchmark, build_e5)
    paper_trials, linear_trials, paper_calls, linear_calls, message_fit = report_e5(
        paper_cells, linear_cells
    )
    largest = NS[-1]
    # Shared contention info buys strictly fewer wasted trials at scale.
    assert paper_trials[largest] <= linear_trials[largest]
    # And fewer communicate calls overall.
    assert paper_calls[largest] <= linear_calls[largest]
    # Message complexity ~ n^2 with small-n curvature tolerance.
    assert 1.4 <= message_fit.slope <= 2.8
    # Trials stay far below n for the paper's algorithm.
    assert paper_trials[largest] <= largest / 2
