"""E3 — Claims 3.2 / Lemmas 3.6-3.7: survivors of one sifting phase.

Plain PoisonPill under the sequential attack keeps Theta(sqrt(n))
processors alive (Section 3.2's matching lower bound for the technique);
Heterogeneous PoisonPill stays within its O(log^2 n) bound.  Note the
paper's separation is asymptotic: at simulator-scale n the two curves are
close (they cross only around n ~ 2^16), so the check here is each
algorithm against *its own* theory curve, plus the sqrt growth exponent
for plain PoisonPill.
"""

from __future__ import annotations

import math

from _common import grid, mean_of, once, run_sweep

from repro.analysis.fitting import fit_power
from repro.analysis.theory import hpp_survivors, poison_pill_survivors
from repro.harness import Table, run_sifting_phase

NS = grid([8, 16, 32, 64, 128], [8, 16, 32, 64, 128, 256, 512])


def build_e3():
    pp_cells = run_sweep(
        NS,
        lambda n, seed: run_sifting_phase(
            n=n, kind="poison_pill", adversary="sequential", seed=seed
        ),
        seed_base=30,
    )
    hpp_cells = run_sweep(
        NS,
        lambda n, seed: run_sifting_phase(
            n=n, kind="heterogeneous", adversary="sequential", seed=seed
        ),
        seed_base=31,
    )
    return pp_cells, hpp_cells


def report_e3(pp_cells, hpp_cells):
    pp = mean_of(pp_cells, lambda run: run.survivors)
    hpp = mean_of(hpp_cells, lambda run: run.survivors)
    table = Table(
        "E3: survivors of one phase under the sequential adversary",
        ["n", "PoisonPill", "2*sqrt(n) bound", "Heterogeneous", "log^2-ish bound"],
    )
    for n in NS:
        table.add_row(
            n, pp[n], poison_pill_survivors(n), hpp[n], hpp_survivors(n)
        )
    pp_fit = fit_power(NS, [pp[n] for n in NS])
    hpp_fit = fit_power(NS, [hpp[n] for n in NS])
    table.add_note(
        f"growth exponents: PoisonPill {pp_fit.slope:.2f} (theory 0.5), "
        f"Heterogeneous {hpp_fit.slope:.2f} (theory -> 0 polylog)"
    )
    table.show()
    return pp, hpp, pp_fit, hpp_fit


def test_e3_survivors(benchmark):
    pp_cells, hpp_cells = once(benchmark, build_e3)
    pp, hpp, pp_fit, hpp_fit = report_e3(pp_cells, hpp_cells)
    for n in NS:
        assert pp[n] <= 1.6 * poison_pill_survivors(n)
        assert hpp[n] <= 1.6 * hpp_survivors(n)
        # The sequential attack really does force sqrt-many PP survivors.
        assert pp[n] >= 0.4 * math.sqrt(n)
    # sqrt-shaped growth for plain PoisonPill.
    assert 0.3 <= pp_fit.slope <= 0.7
    # Heterogeneous grows strictly slower than PoisonPill's sqrt curve.
    assert hpp_fit.slope < pp_fit.slope + 0.15
