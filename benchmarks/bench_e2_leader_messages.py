"""E2 — Theorem A.5: O(kn) message complexity of leader election.

With full participation (k = n) the total message count should grow like
n^2; the power-law fit over the sweep must land near exponent 2, and the
normalized ratio messages / n^2 should stay within a small constant band.
"""

from __future__ import annotations

from _common import grid, mean_of, once, run_sweep

from repro.analysis.fitting import fit_power
from repro.harness import Table, run_leader_election

NS = grid([4, 8, 16, 32, 64], [4, 8, 16, 32, 64, 128, 256])


def build_e2():
    return run_sweep(
        NS,
        lambda n, seed: run_leader_election(n=n, adversary="random", seed=seed),
        seed_base=20,
    )


def report_e2(cells):
    messages = mean_of(cells, lambda run: run.messages_total)
    requests = mean_of(cells, lambda run: run.result.metrics.request_messages)
    table = Table(
        "E2: leader election message complexity (k = n)",
        ["n", "messages(total)", "messages/n^2", "requests(no acks)"],
    )
    for n in NS:
        table.add_row(n, messages[n], messages[n] / (n * n), requests[n])
    fit = fit_power(NS, [messages[n] for n in NS])
    table.add_note(f"power-law exponent {fit.slope:.2f} (paper: O(n^2) => 2)")
    table.show()
    return fit, messages


def test_e2_leader_messages(benchmark):
    cells = once(benchmark, build_e2)
    fit, messages = report_e2(cells)
    # Quadratic growth, allowing small-n curvature.
    assert 1.5 <= fit.slope <= 2.5
    # The normalized constant stays bounded across the sweep.
    ratios = [messages[n] / (n * n) for n in NS if n >= 8]
    assert max(ratios) / min(ratios) < 4.0
