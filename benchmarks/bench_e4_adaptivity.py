"""E4 — Theorem A.5 adaptivity: complexity in k (participants), not n.

With n fixed, both the sifting-round count (O(log* k)) and the message
count (O(kn)) must scale with the number of participants.  Series:
rounds, communicate calls, total messages, and messages/k as k sweeps
from 1 to n.
"""

from __future__ import annotations

from _common import grid, mean_of, once, run_sweep

from repro.analysis.theory import log_star
from repro.harness import Table, run_leader_election

N = 48 if not __import__("os").environ.get("REPRO_BENCH_FULL") else 96
KS = grid([1, 2, 4, 8, 16, 32, 48], [1, 2, 4, 8, 16, 32, 64, 96])
KS = [k for k in KS if k <= N]


def build_e4():
    return run_sweep(
        KS,
        lambda k, seed: run_leader_election(n=N, k=k, adversary="random", seed=seed),
        seed_base=40,
    )


def report_e4(cells):
    rounds = mean_of(cells, lambda run: run.rounds)
    calls = mean_of(cells, lambda run: run.max_comm_calls)
    messages = mean_of(cells, lambda run: run.messages_total)
    table = Table(
        f"E4: adaptivity at fixed n = {N}",
        ["k", "rounds", "log*(k)", "comm calls", "messages", "messages/(k*n)"],
    )
    for k in KS:
        table.add_row(
            k, rounds[k], log_star(k), calls[k], messages[k], messages[k] / (k * N)
        )
    table.add_note("paper: O(log* k) time and O(kn) messages for k participants")
    table.show()
    return rounds, calls, messages


def test_e4_adaptivity(benchmark):
    cells = once(benchmark, build_e4)
    rounds, calls, messages = report_e4(cells)
    # Rounds stay tiny and grow (at most) like log* k plus a constant
    # (the constant absorbs the O(1)-expected tail rounds of Claim A.4,
    # which dominate at tiny k).
    for k in KS:
        assert rounds[k] <= log_star(k) + 8
    # Message complexity is linear in k at fixed n: the per-(k*n) constant
    # stays within a modest band across the sweep (k >= 4: at k = 2 the
    # O(1)-expected round count has fat variance relative to k*n).
    ratios = [messages[k] / (k * N) for k in KS if k >= 4]
    assert max(ratios) / min(ratios) < 5.0
    # Fewer participants never cost more messages.
    assert messages[KS[0]] <= messages[KS[-1]]
