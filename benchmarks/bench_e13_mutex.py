"""E13 — extension (Section 6 future work): mutual exclusion throughput.

The epoch-chained lock serves k one-shot clients in k critical sections.
Series: total messages and the slowest client's communicate calls as k
grows at fixed n.  Each handoff costs one leader election (O(log* k')
among the k' remaining waiters) *plus* every waiter's polling of the
released array, so the per-epoch message cost grows linearly in the
number of waiters and the total is ~k^2 * n — the known cost profile of
a polling test-and-set lock, and exactly why the mutual-exclusion
literature the paper cites ([HW09, HW10]) measures RMRs instead.
"""

from __future__ import annotations

from _common import grid, mean_of, once, run_sweep

from repro.core.extensions import assert_mutual_exclusion, make_lock_once
from repro.harness import Table, make_adversary
from repro.sim import Simulation

N = 24
KS = grid([1, 2, 4, 8, 16], [1, 2, 4, 8, 16, 24])


def _run(k, seed):
    sim = Simulation(
        N,
        {pid: make_lock_once() for pid in range(k)},
        make_adversary("random", seed),
        seed=seed,
        record_events=True,
    )
    result = sim.run()
    intervals = assert_mutual_exclusion(result)
    assert len(intervals) == k
    return result


def build_e13():
    return run_sweep(KS, _run, seed_base=130)


def report_e13(cells):
    calls = mean_of(cells, lambda r: r.metrics.max_comm_calls)
    messages = mean_of(cells, lambda r: r.metrics.messages_total)
    table = Table(
        f"E13: epoch-chained mutex at n = {N} (k one-shot clients)",
        ["k", "max comm calls", "messages", "messages/epoch"],
    )
    for k in KS:
        table.add_row(k, calls[k], messages[k], messages[k] / k)
    table.add_note(
        "every run passed the global-time mutual-exclusion check; per-epoch "
        "cost grows with the waiter count (polling lock: total ~ k^2 * n)"
    )
    table.show()
    return calls, messages


def test_e13_mutex(benchmark):
    cells = once(benchmark, build_e13)
    calls, messages = report_e13(cells)
    # Polling-lock cost profile: total messages ~ k^2 (at fixed n).
    from repro.analysis.fitting import fit_power

    ks = [k for k in KS if k >= 2]
    fit = fit_power(ks, [messages[k] for k in ks])
    assert 1.3 <= fit.slope <= 2.8
    # The slowest client's calls grow with k (it waits out every epoch).
    assert calls[KS[-1]] > calls[KS[0]]
