"""E11 — extension (Section 6 future work): task allocation work bounds.

The do-all extension applies the renaming loop's contention bookkeeping
to task allocation.  Series: total work (task executions summed over
workers) as n = k grows, for the coordinated random-selection algorithm
vs the no-coordination replication strawman (work exactly k*n), under
fair and fragmented schedules.

Shape: coordinated work stays within a small multiple of n (near-perfect
splitting), i.e. its power-law exponent in n stays near 1 while the
strawman's is exactly 2.
"""

from __future__ import annotations

from _common import grid, mean_of, once, run_sweep

from repro.analysis.fitting import fit_power
from repro.core.extensions import make_do_all, make_replicated_do_all
from repro.harness import Table
from repro.sim import Simulation
from repro.adversary import QuorumSplitAdversary, RandomAdversary

NS = grid([4, 8, 16, 32], [4, 8, 16, 32, 64])


def _total_work(n, seed, factory_maker, adversary):
    sim = Simulation(
        n,
        {pid: factory_maker() for pid in range(n)},
        adversary,
        seed=seed,
    )
    result = sim.run()
    return sum(len(executed) for executed in result.outcomes.values())


def build_e11():
    coordinated = run_sweep(
        NS,
        lambda n, seed: _total_work(n, seed, make_do_all, RandomAdversary(seed=seed)),
        seed_base=110,
    )
    fragmented = run_sweep(
        NS,
        lambda n, seed: _total_work(n, seed, make_do_all, QuorumSplitAdversary()),
        seed_base=111,
    )
    replicated = run_sweep(
        NS,
        lambda n, seed: _total_work(
            n, seed, make_replicated_do_all, RandomAdversary(seed=seed)
        ),
        seed_base=112,
    )
    return coordinated, fragmented, replicated


def report_e11(coordinated, fragmented, replicated):
    coord = mean_of(coordinated, lambda work: work)
    frag = mean_of(fragmented, lambda work: work)
    repl = mean_of(replicated, lambda work: work)
    table = Table(
        "E11: do-all total work (n tasks, k = n workers)",
        ["n", "coordinated(random)", "coordinated(fragmented)", "replicated", "n (ideal)"],
    )
    for n in NS:
        table.add_row(n, coord[n], frag[n], repl[n], n)
    coord_fit = fit_power(NS, [coord[n] for n in NS])
    repl_fit = fit_power(NS, [repl[n] for n in NS])
    table.add_note(
        f"work exponents: coordinated {coord_fit.slope:.2f} (~1), "
        f"replicated {repl_fit.slope:.2f} (=2)"
    )
    table.show()
    return coord, frag, repl, coord_fit, repl_fit


def test_e11_task_allocation(benchmark):
    coordinated, fragmented, replicated = once(benchmark, build_e11)
    coord, frag, repl, coord_fit, repl_fit = report_e11(
        coordinated, fragmented, replicated
    )
    for n in NS:
        assert repl[n] == n * n  # the strawman is exact
        assert coord[n] < repl[n]
        assert coord[n] >= n  # cannot do less than every task once
        assert coord[n] <= 5 * n  # near-linear work
    assert repl_fit.slope == 2.0
    assert coord_fit.slope <= 1.5
