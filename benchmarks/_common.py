"""Shared configuration and helpers for the benchmark suite.

Every benchmark regenerates one experiment from DESIGN.md's per-claim
index (E1-E9), prints the measured table next to the paper's predicted
shape, and asserts the *shape* (who wins, growth exponents, crossovers) —
never absolute constants, which are substrate-specific.

Set ``REPRO_BENCH_FULL=1`` for the larger, slower sweeps recorded in
EXPERIMENTS.md; the default grid keeps ``pytest benchmarks/
--benchmark-only`` under a few minutes.  Set ``REPRO_BENCH_WORKERS=N``
to fan each sweep's repetitions out over N forked worker processes —
results are bit-identical to the serial run (same derived seeds), only
the wall-clock changes.
"""

from __future__ import annotations

import os

from repro.analysis.stats import summarize
from repro.harness.sweep import sweep

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")

#: Repetitions per sweep cell.
REPEATS = 5 if FULL else 3

#: Worker processes per sweep; 1 = serial, 0 = all CPUs.
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1") or "1")


def grid(default, full):
    """Pick the parameter grid for the current mode."""
    return full if FULL else default


def mean_of(cells, extract):
    """Per-cell means of one metric, as ``{param: mean}``."""
    return {
        cell.param: summarize(extract(run) for run in cell.runs).mean
        for cell in cells
    }


def run_sweep(values, fn, repeats=None, seed_base=0, workers=None):
    """Thin wrapper fixing the repeat and worker counts to suite defaults."""
    return sweep(
        values,
        fn,
        repeats=repeats or REPEATS,
        seed_base=seed_base,
        workers=WORKERS if workers is None else workers,
    )


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The sweeps are deterministic and already repeat internally per seed,
    so a single timed round per experiment is the honest measurement.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
