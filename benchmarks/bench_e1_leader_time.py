"""E1 — Theorem A.5 headline: O(log* k) time vs the Theta(log n) tournament.

Series: expected max communicate calls per processor (the paper's time
metric, Claim 2.1) and sifting rounds, as n grows, for the paper's
algorithm and the [AGTV92] tournament baseline, under fair-random and
worst-case-style adversaries.

Shape checks:
* the tournament's time grows with the bracket depth (log n slope);
* the paper's algorithm grows far slower — its log-slope is a fraction
  of the tournament's, and the log* model fits it at least as well.
"""

from __future__ import annotations

from _common import grid, mean_of, once, run_sweep

from repro.analysis.fitting import fit_log, fit_logstar
from repro.analysis.theory import expected_rounds, log_star, tournament_levels
from repro.harness import Table, run_leader_election

NS = grid([2, 4, 8, 16, 32, 64], [2, 4, 8, 16, 32, 64, 128, 256])


def build_e1():
    pp_cells = run_sweep(
        NS,
        lambda n, seed: run_leader_election(
            n=n, algorithm="poison_pill", adversary="random", seed=seed
        ),
        seed_base=10,
    )
    tn_cells = run_sweep(
        NS,
        lambda n, seed: run_leader_election(
            n=n, algorithm="tournament", adversary="random", seed=seed
        ),
        seed_base=11,
    )
    pp_seq_cells = run_sweep(
        NS,
        lambda n, seed: run_leader_election(
            n=n, algorithm="poison_pill", adversary="sequential", seed=seed
        ),
        seed_base=12,
    )
    return pp_cells, tn_cells, pp_seq_cells


def report_e1(pp_cells, tn_cells, pp_seq_cells):
    pp_calls = mean_of(pp_cells, lambda run: run.max_comm_calls)
    tn_calls = mean_of(tn_cells, lambda run: run.max_comm_calls)
    seq_calls = mean_of(pp_seq_cells, lambda run: run.max_comm_calls)
    pp_rounds = mean_of(pp_cells, lambda run: run.rounds)

    table = Table(
        "E1: leader election time (max communicate calls per processor)",
        [
            "n",
            "PoisonPill(random)",
            "PoisonPill(sequential)",
            "rounds",
            "log*(n)",
            "Tournament(random)",
            "levels=log2(n)",
        ],
    )
    for n in NS:
        table.add_row(
            n,
            pp_calls[n],
            seq_calls[n],
            pp_rounds[n],
            log_star(n),
            tn_calls[n],
            tournament_levels(n),
        )
    xs = [n for n in NS if n >= 4]
    pp_log = fit_log(xs, [pp_calls[n] for n in xs])
    pp_star = fit_logstar(xs, [pp_calls[n] for n in xs])
    tn_log = fit_log(xs, [tn_calls[n] for n in xs])
    table.add_note(
        f"log2-slope: PoisonPill {pp_log.slope:.2f} vs tournament "
        f"{tn_log.slope:.2f} (paper: O(log* n) vs Theta(log n))"
    )
    table.add_note(
        f"PoisonPill log* fit rmse {pp_star.rmse:.2f} vs log fit rmse "
        f"{pp_log.rmse:.2f}"
    )
    table.add_note(
        f"theory rounds-to-constant at n={NS[-1]}: {expected_rounds(NS[-1])}"
    )
    table.show()
    return pp_log, pp_star, tn_log, pp_calls, tn_calls


def test_e1_leader_time(benchmark):
    pp_cells, tn_cells, pp_seq_cells = once(benchmark, build_e1)
    pp_log, pp_star, tn_log, pp_calls, tn_calls = report_e1(
        pp_cells, tn_cells, pp_seq_cells
    )
    # The tournament pays per bracket level: a clear positive log slope.
    assert tn_log.slope > 2.0
    # The paper's algorithm grows much slower in log n.
    assert pp_log.slope < 0.6 * tn_log.slope
    # At the largest n the paper's algorithm is faster outright.
    assert pp_calls[NS[-1]] < tn_calls[NS[-1]]
