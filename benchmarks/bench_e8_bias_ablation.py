"""E8 — Section 3.2's ablation: the 1/sqrt(n) coin bias is optimal.

PoisonPill with bias n^-e under the sequential attack: survivors come
from two pools — 1-flippers (~n^(1-e) of them) and the 0-flippers that
run before the first 1 (~n^e of them).  e = 1/2 balances the pools; any
other exponent loses on one side, which is exactly why the paper needs
the heterogeneous variant to go below sqrt(n).
"""

from __future__ import annotations

from _common import grid, mean_of, once, run_sweep

from repro.harness import Table, run_sifting_phase

N = 64 if not __import__("os").environ.get("REPRO_BENCH_FULL") else 256
EXPONENTS = grid([0.25, 0.5, 0.75, 1.0], [0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 1.0])
REPEATS_E8 = 8


def build_e8():
    return run_sweep(
        EXPONENTS,
        lambda e, seed: run_sifting_phase(
            n=N, kind="poison_pill", adversary="sequential", seed=seed, bias=N**-e
        ),
        repeats=REPEATS_E8,
        seed_base=80,
    )


def report_e8(cells):
    survivors = mean_of(cells, lambda run: run.survivors)
    table = Table(
        f"E8: PoisonPill bias ablation at n = {N} (sequential adversary)",
        ["bias exponent e (p = n^-e)", "survivors", "theory n^(1-e) + n^e"],
    )
    for e in EXPONENTS:
        table.add_row(e, survivors[e], N ** (1 - e) + N**e)
    table.add_note("paper Sec 3.2: e = 1/2 is the balance point; all e give Omega(sqrt n)")
    table.show()
    return survivors


def test_e8_bias_ablation(benchmark):
    cells = once(benchmark, build_e8)
    survivors = report_e8(cells)
    balanced = survivors[0.5]
    # The balanced bias is no worse than any other exponent (small slack
    # for sampling noise).
    for e in EXPONENTS:
        assert balanced <= survivors[e] * 1.25
    # Extreme exponents are clearly worse: the lopsided pools dominate.
    assert survivors[1.0] > 1.8 * balanced
