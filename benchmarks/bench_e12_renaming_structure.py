"""E12 — Section 4's iteration accounting: clean/dirty/cross totals.

The renaming message bound (Theorem 4.2) decomposes every loop iteration
into clean(j), dirty(j) or cross(j) and proves each family totals O(n)
in expectation (Lemmas A.10, A.12).  Using the execution analyzer we
classify every iteration of real runs and report the totals — they
should all stay within small multiples of n, with dirty and cross
iterations rare (each processor is limited to one of each per phase,
Claim A.11, which the analyzer asserts as it classifies).
"""

from __future__ import annotations

from _common import grid, once, run_sweep

from repro.analysis.renaming_analysis import RenamingAnalysis
from repro.analysis.stats import summarize
from repro.core import make_get_name
from repro.harness import Table, make_adversary
from repro.sim import Simulation

NS = grid([8, 16, 24], [8, 16, 32, 48])
ADVERSARY = "random"


def _structure(n, seed):
    sim = Simulation(
        n,
        {pid: make_get_name() for pid in range(n)},
        make_adversary(ADVERSARY, seed),
        seed=seed,
        record_events=True,
    )
    result = sim.run()
    analysis = RenamingAnalysis.from_result(result)
    analysis.check_all()  # Lemma A.7 / A.9 / Claim A.11 on this execution
    clean = dirty = cross = 0
    for record in analysis.iterations:
        if not record.completed_pick:
            continue
        kind, _ = analysis.classify(record)
        if kind == "clean":
            clean += 1
        else:
            dirty += 1
        if analysis.is_cross(record) is not None:
            cross += 1
    return {"clean": clean, "dirty": dirty, "cross": cross, "total": clean + dirty}


def build_e12():
    return run_sweep(NS, _structure, seed_base=120)


def report_e12(cells):
    table = Table(
        "E12: renaming iteration structure (clean/dirty/cross totals)",
        ["n", "iterations", "clean", "dirty", "cross", "total/n"],
    )
    means = {}
    for cell in cells:
        n = cell.param
        means[n] = {
            key: summarize(run[key] for run in cell.runs).mean
            for key in ("clean", "dirty", "cross", "total")
        }
        table.add_row(
            n,
            means[n]["total"],
            means[n]["clean"],
            means[n]["dirty"],
            means[n]["cross"],
            means[n]["total"] / n,
        )
    table.add_note(
        "paper: E[sum clean], E[sum dirty], E[sum cross] are all O(n) "
        "(Lemmas A.10, A.12); every run also passed the Lemma A.7/A.9/"
        "Claim A.11 structural checks"
    )
    table.show()
    return means


def test_e12_renaming_structure(benchmark):
    cells = once(benchmark, build_e12)
    means = report_e12(cells)
    for n in NS:
        # Total iterations linear in n with a small constant.
        assert means[n]["total"] <= 4 * n
        # Clean iterations dominate; dirty/cross are rare.
        assert means[n]["dirty"] <= n
        assert means[n]["cross"] <= n
        assert means[n]["clean"] >= n  # everyone's winning pick at least
