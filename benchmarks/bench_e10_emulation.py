"""E10 — Related Work's emulation claim, quantified.

"[O]ne option is to emulate efficient shared-memory solutions via
simulations between shared-memory and message-passing [ABND95].  This
preserves time complexity, but communication may be increased..."

We run the tournament baseline twice: natively over ``communicate`` and
as a shared-memory algorithm over emulated ABD registers, under the same
adversary and seeds.  The time *shape* (log n growth) must be preserved
by the emulation, while messages and calls pay a constant-factor
emulation tax (each register op is two quorum rounds).
"""

from __future__ import annotations

from _common import grid, mean_of, once, run_sweep

from repro.analysis.fitting import fit_log
from repro.harness import Table
from repro.memory import make_register_tournament
from repro.sim import Simulation
from repro.adversary import RandomAdversary
from repro.core import Outcome
from repro.core.baselines import make_tournament

NS = grid([4, 8, 16, 32], [4, 8, 16, 32, 64])


def _run(n, seed, factory_maker):
    sim = Simulation(
        n,
        {pid: factory_maker() for pid in range(n)},
        RandomAdversary(seed=seed),
        seed=seed,
    )
    result = sim.run()
    winners = [pid for pid, o in result.outcomes.items() if o is Outcome.WIN]
    assert len(winners) == 1
    return result


def build_e10():
    native_cells = run_sweep(
        NS, lambda n, seed: _run(n, seed, make_tournament), seed_base=100
    )
    emulated_cells = run_sweep(
        NS, lambda n, seed: _run(n, seed, make_register_tournament), seed_base=100
    )
    return native_cells, emulated_cells


def report_e10(native_cells, emulated_cells):
    native_calls = mean_of(native_cells, lambda r: r.metrics.max_comm_calls)
    emulated_calls = mean_of(emulated_cells, lambda r: r.metrics.max_comm_calls)
    native_messages = mean_of(native_cells, lambda r: r.metrics.messages_total)
    emulated_messages = mean_of(emulated_cells, lambda r: r.metrics.messages_total)
    table = Table(
        "E10: tournament natively vs over emulated ABD registers",
        [
            "n",
            "calls(native)",
            "calls(emulated)",
            "time tax",
            "messages(native)",
            "messages(emulated)",
            "message tax",
        ],
    )
    for n in NS:
        table.add_row(
            n,
            native_calls[n],
            emulated_calls[n],
            emulated_calls[n] / native_calls[n],
            native_messages[n],
            emulated_messages[n],
            emulated_messages[n] / native_messages[n],
        )
    native_fit = fit_log(NS, [native_calls[n] for n in NS])
    emulated_fit = fit_log(NS, [emulated_calls[n] for n in NS])
    table.add_note(
        f"time log-slopes: native {native_fit.slope:.2f}, emulated "
        f"{emulated_fit.slope:.2f} (emulation preserves the Theta(log n) shape)"
    )
    table.show()
    return native_calls, emulated_calls, native_fit, emulated_fit


def test_e10_emulation(benchmark):
    native_cells, emulated_cells = once(benchmark, build_e10)
    native_calls, emulated_calls, native_fit, emulated_fit = report_e10(
        native_cells, emulated_cells
    )
    # Time complexity preserved: both grow logarithmically.
    assert native_fit.slope > 0
    assert emulated_fit.slope > 0
    # The emulation tax stays a bounded constant factor across the sweep.
    taxes = [emulated_calls[n] / native_calls[n] for n in NS]
    assert all(0.3 <= tax <= 10 for tax in taxes)
