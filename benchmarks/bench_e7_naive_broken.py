"""E7 — the introduction's motivating attack: naive sifting is broken.

The naive strawman (flip, announce, drop if you saw a 1) sifts well
against oblivious scheduling but fails *completely* against the strong
adversary, which examines the flips and runs 0-flippers first behind
frozen channels.  PoisonPill under the identical adversary still sifts —
the whole reason for the commit-before-flip design.

Series: survivor fraction per sifter x adversary.
"""

from __future__ import annotations

from _common import grid, mean_of, once, run_sweep

from repro.harness import Table, run_sifting_phase

# n >= 16: at n = 8 the quorum (5 of 8) cannot always avoid the
# 1-flippers' channels, so the attack occasionally leaks a coin — a real
# small-system limitation of the adversary, not of the simulation.
NS = grid([16, 32, 64], [16, 32, 64, 128])


def build_e7():
    def cell(kind, adversary, base):
        return run_sweep(
            NS,
            lambda n, seed: run_sifting_phase(
                n=n, kind=kind, adversary=adversary, seed=seed, check=False
            ),
            seed_base=base,
        )

    return {
        ("naive", "coin_aware"): cell("naive", "coin_aware", 70),
        ("naive", "oblivious"): cell("naive", "oblivious", 71),
        ("poison_pill", "coin_aware"): cell("poison_pill", "coin_aware", 72),
        ("heterogeneous", "coin_aware"): cell("heterogeneous", "coin_aware", 73),
    }


def report_e7(cells):
    fractions = {
        key: mean_of(cell, lambda run: run.survivor_fraction)
        for key, cell in cells.items()
    }
    table = Table(
        "E7: survivor fraction — naive sifting vs PoisonPill",
        [
            "n",
            "naive vs strong adv",
            "naive vs oblivious",
            "PoisonPill vs strong",
            "Heterogeneous vs strong",
        ],
    )
    for n in NS:
        table.add_row(
            n,
            fractions[("naive", "coin_aware")][n],
            fractions[("naive", "oblivious")][n],
            fractions[("poison_pill", "coin_aware")][n],
            fractions[("heterogeneous", "coin_aware")][n],
        )
    table.add_note(
        "paper intro: the strong adversary sees the flips and keeps every "
        "naive participant alive; the poison pill's catch-22 prevents this"
    )
    table.show()
    return fractions


def test_e7_naive_broken(benchmark):
    cells = once(benchmark, build_e7)
    fractions = report_e7(cells)
    for n in NS:
        # The attack keeps (essentially) every naive participant alive; a
        # tiny allowance covers rare forced quorum leaks at small n.
        assert fractions[("naive", "coin_aware")][n] >= 0.9
        # The same scheduler cannot defeat the PoisonPill designs.
        assert fractions[("poison_pill", "coin_aware")][n] <= 0.7
        assert fractions[("heterogeneous", "coin_aware")][n] <= 0.7
    # Against a blind scheduler, the naive sifter does sift — the gap to
    # the strong adversary is the paper's motivating observation.
    largest = NS[-1]
    assert fractions[("naive", "oblivious")][largest] < 0.8
    assert (
        fractions[("naive", "coin_aware")][largest]
        > fractions[("naive", "oblivious")][largest] + 0.2
    )
