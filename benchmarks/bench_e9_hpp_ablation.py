"""E9 — design ablation: what the list augmentation of Figure 2 buys.

Heterogeneous PoisonPill's second idea is propagating each processor's
observed-participants list alongside its priority and closing the death
rule over the union of lists (Claim 3.3's closure).  The ablated variant
biases by view size but drops the lists from the death rule.  Under
view-fragmenting schedules the ablated rule learns about fewer
participants and so spares more of them; with full lists the death rule
is strictly more aggressive (its L set is a superset), at equal safety
(at least one survivor — tested in the unit suite).

Series: survivors with/without lists under fragmented and sequential
schedules.
"""

from __future__ import annotations

from _common import grid, mean_of, once, run_sweep

from repro.harness import Table, run_sifting_phase

NS = grid([16, 32, 64], [16, 32, 64, 128, 256])
REPEATS_E9 = 6


def build_e9():
    def cell(use_lists, adversary, base):
        return run_sweep(
            NS,
            lambda n, seed: run_sifting_phase(
                n=n,
                kind="heterogeneous",
                adversary=adversary,
                seed=seed,
                use_lists=use_lists,
            ),
            repeats=REPEATS_E9,
            seed_base=base,
        )

    # Both variants run under identical seeds: the ablation changes only
    # the death rule (the propagated messages and coin flips are the
    # same), so executions are pairwise identical up to the final
    # SURVIVE/DIE decisions and the comparison is exactly paired.
    return {
        (True, "quorum_split"): cell(True, "quorum_split", 90),
        (False, "quorum_split"): cell(False, "quorum_split", 90),
        (True, "sequential"): cell(True, "sequential", 92),
        (False, "sequential"): cell(False, "sequential", 92),
    }


def report_e9(cells):
    survivors = {
        key: mean_of(cell, lambda run: run.survivors) for key, cell in cells.items()
    }
    table = Table(
        "E9: Heterogeneous PoisonPill list-augmentation ablation (survivors)",
        [
            "n",
            "lists, fragmented",
            "no lists, fragmented",
            "lists, sequential",
            "no lists, sequential",
        ],
    )
    for n in NS:
        table.add_row(
            n,
            survivors[(True, "quorum_split")][n],
            survivors[(False, "quorum_split")][n],
            survivors[(True, "sequential")][n],
            survivors[(False, "sequential")][n],
        )
    table.add_note(
        "collect replies ship whole views, so generic schedules rarely "
        "separate the rules; tests/core/test_hpp_lists_matter.py constructs "
        "the minimal schedule where the closure rule (Claim 3.3) changes "
        "the outcome"
    )
    table.show()
    return survivors


def test_e9_hpp_ablation(benchmark):
    cells = once(benchmark, build_e9)
    survivors = report_e9(cells)
    # Paired executions: the full death rule's L set is a superset of the
    # ablated one's, so it kills pointwise at least as many processors.
    for adversary in ("quorum_split", "sequential"):
        for n in NS:
            assert (
                survivors[(True, adversary)][n]
                <= survivors[(False, adversary)][n] + 1e-9
            )
