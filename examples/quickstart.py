#!/usr/bin/env python
"""Quickstart: elect a leader and assign names in a simulated async system.

Runs the paper's two algorithms end to end with default settings and
prints the headline numbers — who won, how many communicate calls the
slowest processor needed (the paper's time metric), and how many messages
flowed in total.

Usage::

    python examples/quickstart.py [n] [seed]
"""

from __future__ import annotations

import sys

from repro import run_leader_election, run_renaming
from repro.analysis import log_star


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7

    print(f"== Leader election among n = {n} processors (seed {seed}) ==")
    election = run_leader_election(n=n, adversary="random", seed=seed)
    print(f"winner:                processor {election.winner}")
    print(f"sifting rounds:        {election.rounds}  (log* n = {log_star(n)})")
    print(f"max communicate calls: {election.max_comm_calls}")
    print(f"total messages:        {election.messages_total:,}")

    print()
    print(f"== Tournament baseline on the same system ==")
    tournament = run_leader_election(
        n=n, algorithm="tournament", adversary="random", seed=seed
    )
    print(f"winner:                processor {tournament.winner}")
    print(f"max communicate calls: {tournament.max_comm_calls}  "
          f"(bracket depth ~ log2 n)")
    print(f"total messages:        {tournament.messages_total:,}")

    print()
    print(f"== Strong renaming: assign names 0..{n - 1} ==")
    renaming = run_renaming(n=n, adversary="random", seed=seed)
    assignment = dict(sorted(renaming.names.items()))
    print(f"names:                 {assignment}")
    print(f"max trials by anyone:  {renaming.max_trials}")
    print(f"max communicate calls: {renaming.max_comm_calls}")
    print(f"total messages:        {renaming.messages_total:,}")

    print()
    print("All executions were validated: unique winner, linearizable order,")
    print("and distinct names — the checkers raise on any violation.")


if __name__ == "__main__":
    main()
