#!/usr/bin/env python
"""Domain scenario: workers claiming shard slots via strong renaming.

n stateless workers boot concurrently and must each claim a distinct
shard slot 0..n-1 — no coordinator, no sequencer, crashes allowed, and
the network schedule is adversarial.  This is exactly the paper's strong
renaming problem (Figure 3): every worker repeatedly picks a random slot
it believes free and wins it through a per-slot leader election.

The demo also runs the no-shared-state baseline (each worker privately
shuffles the slots and tries them one by one) to show the cost of not
propagating contention information.

With ``--live`` the same claim pattern runs against the election
service: each shard slot is a key in the service namespace, and a worker
claims a slot by winning its lease (``acquire`` with no waiting — a busy
slot is a lost per-slot election, try another).  Pass ``--live
HOST:PORT`` to target a running ``repro serve``, or bare ``--live`` to
spin up an in-process service.

Usage::

    python examples/shard_assignment.py [n]
    python examples/shard_assignment.py --live [HOST:PORT] [n]
"""

from __future__ import annotations

import sys

from repro import run_renaming


def run_simulated(n: int) -> None:
    """The default path: paper renaming vs the blind baseline."""
    print(f"Assigning {n} shard slots to {n} workers, adversarial scheduling")
    print()
    paper = run_renaming(n=n, algorithm="paper", adversary="quorum_split", seed=3)
    print("paper's algorithm (shared contention views):")
    for pid, slot in sorted(paper.names.items()):
        print(f"  worker {pid:2d} -> shard {slot}")
    print(f"  max trials by any worker:  {paper.max_trials}")
    print(f"  max communicate calls:     {paper.max_comm_calls}")
    print(f"  total messages:            {paper.messages_total:,}")

    print()
    blind = run_renaming(n=n, algorithm="linear", adversary="quorum_split", seed=3)
    print("blind-trials baseline (no contention sharing):")
    print(f"  max trials by any worker:  {blind.max_trials}")
    print(f"  max communicate calls:     {blind.max_comm_calls}")
    print(f"  total messages:            {blind.messages_total:,}")

    print()
    ratio = blind.max_comm_calls / max(1, paper.max_comm_calls)
    print(f"Sharing contention info cut the slowest worker's communicate calls "
          f"by {ratio:.1f}x here;")
    print("the paper proves O(log^2 n) vs Omega(n) for the two strategies.")


def run_live(address: str | None, n: int) -> None:
    """The service path: slots are lease keys, claims are won elections."""
    import asyncio
    import random

    from repro.check.invariants import evaluate_service_run
    from repro.net.client import ServiceClient
    from repro.net.service import ElectionService, ServiceRun

    async def worker(client, slots: int, claims: dict[str, int], trials: dict[str, int]):
        """Pick random slots until one lease is won — Figure 3's loop."""
        rng = random.Random(hash(client.client_id) & 0xFFFF)
        tried = 0
        while True:
            slot = rng.randrange(slots)
            tried += 1
            lease = await client.acquire(f"shard/{slot}", ttl_ms=60_000.0)
            if lease is not None:
                claims[client.client_id] = slot
                trials[client.client_id] = tried
                return

    async def scenario() -> None:
        service = None
        if address is None:
            service = ElectionService(seed=0, default_ttl_ms=60_000.0)
            host, port = await service.start()
            print(f"started in-process service at {host}:{port}")
        else:
            host, text = address.rsplit(":", 1)
            port = int(text)
        workers = [
            await ServiceClient.connect(host, port, client_id=f"worker-{pid}")
            for pid in range(n)
        ]
        print(f"{n} workers claiming {n} shard slots via lease elections")
        print()
        claims: dict[str, int] = {}
        trials: dict[str, int] = {}
        await asyncio.gather(*(worker(w, n, claims, trials) for w in workers))
        for name in sorted(claims):
            print(f"  {name} -> shard {claims[name]} "
                  f"({trials[name]} slot trials)")
        slots = sorted(claims.values())
        assert slots == list(range(n)), "every slot claimed exactly once"
        print()
        print(f"max trials by any worker:  {max(trials.values())}")
        for w in workers:
            await w.close()
        if service is not None:
            run = ServiceRun.of(service)
            await service.stop()
            violations = evaluate_service_run(run)
            assert not violations, violations
            print("invariants: one holder per (slot, epoch) — strong renaming")
            print("holds because each slot is an independent election.")

    asyncio.run(scenario())


def main() -> None:
    """Parse argv and dispatch to the simulator or live path."""
    argv = sys.argv[1:]
    if argv and argv[0] == "--live":
        rest = argv[1:]
        address = rest[0] if rest and ":" in rest[0] else None
        tail = rest[1:] if address is not None else rest
        n = int(tail[0]) if tail else 8
        run_live(address, n)
        return
    n = int(argv[0]) if argv else 16
    run_simulated(n)


if __name__ == "__main__":
    main()
