#!/usr/bin/env python
"""Domain scenario: workers claiming shard slots via strong renaming.

n stateless workers boot concurrently and must each claim a distinct
shard slot 0..n-1 — no coordinator, no sequencer, crashes allowed, and
the network schedule is adversarial.  This is exactly the paper's strong
renaming problem (Figure 3): every worker repeatedly picks a random slot
it believes free and wins it through a per-slot leader election.

The demo also runs the no-shared-state baseline (each worker privately
shuffles the slots and tries them one by one) to show the cost of not
propagating contention information.

Usage::

    python examples/shard_assignment.py [n]
"""

from __future__ import annotations

import sys

from repro import run_renaming


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 16

    print(f"Assigning {n} shard slots to {n} workers, adversarial scheduling")
    print()
    paper = run_renaming(n=n, algorithm="paper", adversary="quorum_split", seed=3)
    print("paper's algorithm (shared contention views):")
    for pid, slot in sorted(paper.names.items()):
        print(f"  worker {pid:2d} -> shard {slot}")
    print(f"  max trials by any worker:  {paper.max_trials}")
    print(f"  max communicate calls:     {paper.max_comm_calls}")
    print(f"  total messages:            {paper.messages_total:,}")

    print()
    blind = run_renaming(n=n, algorithm="linear", adversary="quorum_split", seed=3)
    print("blind-trials baseline (no contention sharing):")
    print(f"  max trials by any worker:  {blind.max_trials}")
    print(f"  max communicate calls:     {blind.max_comm_calls}")
    print(f"  total messages:            {blind.messages_total:,}")

    print()
    ratio = blind.max_comm_calls / max(1, paper.max_comm_calls)
    print(f"Sharing contention info cut the slowest worker's communicate calls "
          f"by {ratio:.1f}x here;")
    print("the paper proves O(log^2 n) vs Omega(n) for the two strategies.")


if __name__ == "__main__":
    main()
