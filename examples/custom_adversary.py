#!/usr/bin/env python
"""Extending the library: write your own adversary and attack a protocol.

An adversary is a single ``choose(sim) -> Action | None`` method with
full read access to the simulation — in-flight messages, register views,
and every coin any processor flipped.  This demo builds a "grudge"
adversary that singles out one processor and starves its traffic for as
long as something else can make progress, then verifies that leader
election stays correct (and that the victim usually loses — starvation
hurts, but never breaks safety).

Usage::

    python examples/custom_adversary.py [n]
"""

from __future__ import annotations

import sys

from repro import Adversary, Simulation
from repro.adversary.base import fallback_action
from repro.analysis import check_leader_election
from repro.core import make_leader_elect
from repro.sim import Deliver, Step


class GrudgeAdversary(Adversary):
    """Starve one victim: its messages move only when nothing else can."""

    name = "grudge"

    def __init__(self, victim: int) -> None:
        self._victim = victim

    def choose(self, sim):
        # Prefer any delivery that does not involve the victim.
        for message in reversed(sim.in_flight.messages):
            if self._victim not in (message.sender, message.recipient):
                return Deliver(message)
        # Prefer stepping anyone but the victim.
        others = [pid for pid in sim.steppable if pid != self._victim]
        if others:
            return Step(min(others))
        # Only victim-related actions remain: let them through (fairness).
        return fallback_action(sim)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    victim = 0

    victim_wins = 0
    for seed in range(10):
        sim = Simulation(
            n,
            {pid: make_leader_elect() for pid in range(n)},
            GrudgeAdversary(victim),
            seed=seed,
        )
        result = sim.run()
        report = check_leader_election(result)  # safety holds regardless
        if report.winner == victim:
            victim_wins += 1
        print(f"seed {seed}: winner = processor {report.winner}")

    print()
    print(f"victim (processor {victim}) won {victim_wins}/10 races under starvation")
    print("Safety never depends on the schedule: the checker validated every run.")


if __name__ == "__main__":
    main()
