#!/usr/bin/env python
"""The paper's opening story, executed: why naive sifting fails.

The introduction's strawman — flip a biased coin, announce it, and drop
out if you flipped 0 and saw a 1 — works against a scheduler that cannot
see the flips, but a strong adaptive adversary runs all the 0-flippers
to completion behind frozen channels and nobody ever drops.  PoisonPill's
commit-before-flip closes the loophole: to learn a flip the adversary
must first let the commit reach a quorum, and that commit alone kills
later low-priority processors.

Usage::

    python examples/adversary_showdown.py [n]
"""

from __future__ import annotations

import sys

from repro import run_sifting_phase


def survivors_over_seeds(kind: str, adversary: str, n: int, seeds: int = 5) -> float:
    total = 0
    for seed in range(seeds):
        run = run_sifting_phase(
            n=n, kind=kind, adversary=adversary, seed=seed, check=False
        )
        total += run.survivors
    return total / seeds


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 32

    print(f"One sifting phase, n = {n} participants, mean survivors over 5 seeds")
    print()
    rows = [
        ("naive sifter", "oblivious", "weak adversary (cannot see flips)"),
        ("naive sifter", "coin_aware", "STRONG adversary (sees the flips)"),
        ("poison pill", "coin_aware", "same strong adversary"),
        ("heterogeneous", "coin_aware", "same strong adversary"),
    ]
    kind_map = {
        "naive sifter": "naive",
        "poison pill": "poison_pill",
        "heterogeneous": "heterogeneous",
    }
    for label, adversary, description in rows:
        mean = survivors_over_seeds(kind_map[label], adversary, n)
        bar = "#" * round(40 * mean / n)
        print(f"{label:>14} vs {adversary:<11} {mean:6.1f}/{n}  {bar}")
        print(f"{'':>14}    ({description})")
    print()
    print("The naive sifter eliminates nobody against the strong adversary —")
    print("the catch-22 of the poison pill is what makes sifting adversary-proof.")


if __name__ == "__main__":
    main()
