#!/usr/bin/env python
"""Domain scenario: a crash-prone task farm with no coordinator.

n independent jobs must each run at least once; k workers cooperate over
an adversarial asynchronous network, and some of them crash mid-farm.
This uses the task-allocation extension (DESIGN.md E11, the paper's
Section 6 future-work direction): workers share a sticky "done" board,
pick random outstanding jobs, and stop when their view shows everything
finished.

The demo contrasts total work (job executions summed over workers)
against the no-coordination strawman where every worker runs every job.

Usage::

    python examples/task_farm.py [n_jobs] [n_workers]
"""

from __future__ import annotations

import sys

from repro import RandomAdversary, RandomCrashAdversary, Simulation
from repro.core.extensions import make_do_all, make_replicated_do_all


def farm(n, workers, factory_maker, seed, crash_rate=0.0):
    adversary = RandomAdversary(seed=seed)
    if crash_rate:
        adversary = RandomCrashAdversary(adversary, rate=crash_rate, seed=seed)
    sim = Simulation(
        max(n, workers),
        {pid: factory_maker(tasks=n) for pid in range(workers)},
        adversary,
        seed=seed,
    )
    result = sim.run(require_termination=False)
    performed = set()
    work = 0
    for pid, executed in result.outcomes.items():
        performed.update(executed)
        work += len(executed)
    for pid in result.crashed:  # partial progress of crashed workers
        executed = sim.processes[pid].registers.get("da.executed", pid) or ()
        performed.update(executed)
        work += len(executed)
    return result, performed, work


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    print(f"Task farm: {n} jobs, {workers} workers, adversarial network")
    print()
    result, performed, work = farm(n, workers, make_do_all, seed=1)
    print(f"coordinated:  all {len(performed)}/{n} jobs done, "
          f"total executions {work} (ideal {n})")

    _, performed_r, work_r = farm(n, workers, make_replicated_do_all, seed=1)
    print(f"replicated:   all {len(performed_r)}/{n} jobs done, "
          f"total executions {work_r} (= workers x jobs)")

    print()
    print("Now with crash injection:")
    result, performed, work = farm(n, workers, make_do_all, seed=2, crash_rate=0.002)
    crashed = sorted(result.crashed)
    print(f"coordinated:  {len(performed)}/{n} jobs done, executions {work}, "
          f"crashed workers {crashed or 'none'}")
    print()
    print("Jobs are marked done only after execution, so a 'done' board entry")
    print("is trustworthy even when its executor crashed a moment later.")


if __name__ == "__main__":
    main()
