#!/usr/bin/env python
"""Domain scenario: racing to become primary while replicas crash.

A replicated service loses its primary; every replica races to become
the new one.  The network is asynchronous (an adversarial scheduler
decides every delivery) and replicas keep crashing during the race.  The
election must produce at most one primary no matter what, and must
produce exactly one as long as a majority stays alive — which is exactly
the paper's leader-election guarantee (Theorem A.5).

The default path runs in the simulator.  With ``--live`` the same
scenario runs against the long-lived election service instead: replicas
become :class:`~repro.net.client.ServiceClient` sessions contending for
the ``primary`` lease, the incumbent is crashed by aborting its TCP
session, and the epoch counter is the fencing token that keeps deposed
primaries out.  Pass ``--live HOST:PORT`` to target a running ``repro
serve``, or bare ``--live`` to spin up an in-process service.

Usage::

    python examples/primary_failover.py [n] [crash_rate_ppm]
    python examples/primary_failover.py --live [HOST:PORT] [n]
"""

from __future__ import annotations

import sys

from repro import RandomAdversary, RandomCrashAdversary, Simulation
from repro.analysis import check_leader_election
from repro.core import make_leader_elect


def failover_round(n: int, rate: float, seed: int):
    """One simulated failover race under a crashing random adversary."""
    adversary = RandomCrashAdversary(
        RandomAdversary(seed=seed), rate=rate, seed=seed
    )
    sim = Simulation(
        n, {pid: make_leader_elect() for pid in range(n)}, adversary, seed=seed
    )
    result = sim.run(require_termination=False)
    report = check_leader_election(result)  # raises on any spec violation
    return result, report


def run_simulated(n: int, rate_ppm: int) -> None:
    """The default path: ten seeded races in the simulator."""
    rate = rate_ppm / 1e6
    print(f"Primary failover race: {n} replicas, crash rate {rate:.4%} per event")
    print()
    elected = 0
    headless = 0
    for seed in range(10):
        result, report = failover_round(n, rate, seed)
        crashed = sorted(result.crashed)
        if report.winner is not None:
            elected += 1
            status = f"replica {report.winner} is the new primary"
        else:
            headless += 1
            status = "no primary elected (winner-to-be crashed mid-race)"
        print(f"seed {seed}: {status}; crashed {crashed or 'none'}")

    print()
    print(f"{elected}/10 races elected a primary, {headless}/10 ended headless")
    print("Every race was linearizable: at most one winner, and nobody")
    print("conceded before a legitimate winner candidate had started.")


def run_live(address: str | None, n: int) -> None:
    """The service path: replicas hold and lose the ``primary`` lease."""
    import asyncio

    from repro.check.invariants import evaluate_service_run
    from repro.net.client import ServiceClient
    from repro.net.service import ElectionService, ServiceRun

    async def scenario() -> None:
        service = None
        if address is None:
            service = ElectionService(seed=0, default_ttl_ms=30_000.0)
            host, port = await service.start()
            print(f"started in-process service at {host}:{port}")
        else:
            host, text = address.rsplit(":", 1)
            port = int(text)
        replicas = [
            await ServiceClient.connect(host, port, client_id=f"replica-{pid}")
            for pid in range(n)
        ]
        print(f"{n} replicas racing for the 'primary' lease")
        print()
        # Everyone races; one wins, the rest queue as waiters.
        waiters = [
            asyncio.create_task(r.acquire("primary", wait_ms=30_000.0))
            for r in replicas
        ]
        for round_index in range(3):
            await asyncio.sleep(0.2)
            done = [t for t in waiters if t.done() and t.result() is not None]
            assert len(done) == 1, "at most one primary per epoch"
            lease = done[0].result()
            holder = waiters.index(done[0])
            print(f"epoch {lease.epoch}: replica {holder} is primary")
            if round_index == 2:
                break
            # Crash the incumbent: abort its session; the service fails
            # the lease over to a queued waiter at the next epoch.
            replicas[holder].abort()
            waiters[holder] = asyncio.create_task(asyncio.sleep(3600))
            print(f"  ... replica {holder} crashed; failing over")
        for task in waiters:
            task.cancel()
        for replica in replicas:
            try:
                await replica.close()
            except Exception:
                pass
        if service is not None:
            run = ServiceRun.of(service)
            await service.stop()
            violations = evaluate_service_run(run)
            assert not violations, violations
            epochs = [record.epoch for record in run.history]
            print()
            print(f"grant history epochs: {epochs} — strictly increasing,")
            print("one holder per epoch: deposed primaries stay fenced out.")

    asyncio.run(scenario())


def main() -> None:
    """Parse argv and dispatch to the simulator or live path."""
    argv = sys.argv[1:]
    if argv and argv[0] == "--live":
        rest = argv[1:]
        address = rest[0] if rest and ":" in rest[0] else None
        tail = rest[1:] if address is not None else rest
        n = int(tail[0]) if tail else 5
        run_live(address, n)
        return
    n = int(argv[0]) if argv else 9
    rate_ppm = int(argv[1]) if len(argv) > 1 else 2000
    run_simulated(n, rate_ppm)


if __name__ == "__main__":
    main()
