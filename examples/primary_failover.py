#!/usr/bin/env python
"""Domain scenario: racing to become primary while replicas crash.

A replicated service loses its primary; every replica races to become
the new one.  The network is asynchronous (an adversarial scheduler
decides every delivery) and replicas keep crashing during the race.  The
election must produce at most one primary no matter what, and must
produce exactly one as long as a majority stays alive — which is exactly
the paper's leader-election guarantee (Theorem A.5).

Usage::

    python examples/primary_failover.py [n] [crash_rate_ppm]
"""

from __future__ import annotations

import sys

from repro import Outcome, RandomAdversary, RandomCrashAdversary, Simulation
from repro.analysis import check_leader_election
from repro.core import make_leader_elect


def failover_round(n: int, rate: float, seed: int):
    adversary = RandomCrashAdversary(
        RandomAdversary(seed=seed), rate=rate, seed=seed
    )
    sim = Simulation(
        n, {pid: make_leader_elect() for pid in range(n)}, adversary, seed=seed
    )
    result = sim.run(require_termination=False)
    report = check_leader_election(result)  # raises on any spec violation
    return result, report


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 9
    rate_ppm = int(sys.argv[2]) if len(sys.argv) > 2 else 2000
    rate = rate_ppm / 1e6

    print(f"Primary failover race: {n} replicas, crash rate {rate:.4%} per event")
    print()
    elected = 0
    headless = 0
    for seed in range(10):
        result, report = failover_round(n, rate, seed)
        crashed = sorted(result.crashed)
        if report.winner is not None:
            elected += 1
            status = f"replica {report.winner} is the new primary"
        else:
            headless += 1
            status = "no primary elected (winner-to-be crashed mid-race)"
        print(f"seed {seed}: {status}; crashed {crashed or 'none'}")

    print()
    print(f"{elected}/10 races elected a primary, {headless}/10 ended headless")
    print("Every race was linearizable: at most one winner, and nobody")
    print("conceded before a legitimate winner candidate had started.")


if __name__ == "__main__":
    main()
